//! The library-interposer architecture (paper Section 4).
//!
//! The real TEMPI is a shared library exporting a *partial* MPI
//! implementation; the dynamic linker resolves each MPI symbol either to
//! TEMPI (when TEMPI exports it and sits earlier in the link order /
//! `LD_PRELOAD`) or to the system MPI, and TEMPI internally `dlsym`s
//! through to the system implementation after adding its functionality.
//!
//! The simulator reproduces that dispatch structure explicitly:
//! [`Linker`] is the resolution table (which [`MpiSymbol`]s TEMPI
//! exports), and [`InterposedMpi`] is the application-facing MPI object —
//! every call consults the table, runs either the TEMPI or the system
//! implementation, and records which layer served it (so tests can assert
//! the fall-through behavior the paper's Fig. 5 describes).

use std::collections::HashSet;

use gpu_sim::GpuPtr;
use mpi_sim::{AlltoallvBlock, Datatype, MpiResult, RankCtx, Status};
use serde::{Deserialize, Serialize};

use crate::config::{Method, TempiConfig};
use crate::tempi::Tempi;

/// MPI entry points relevant to the datatype path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum MpiSymbol {
    TypeCommit,
    Pack,
    Unpack,
    PackSize,
    Send,
    Recv,
    Alltoallv,
    Barrier,
    CommRevoke,
    CommShrink,
    CommAgree,
}

/// Which library a symbol resolved to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Provider {
    /// The interposed TEMPI library.
    Tempi,
    /// The underlying system MPI.
    System,
}

/// The symbol-resolution table the dynamic linker would produce.
#[derive(Debug, Clone)]
pub struct Linker {
    overrides: HashSet<MpiSymbol>,
}

impl Linker {
    /// TEMPI inserted before the system MPI (link order or `LD_PRELOAD`):
    /// the symbols the library exports resolve to TEMPI.
    pub fn with_tempi() -> Self {
        Linker {
            overrides: [
                MpiSymbol::TypeCommit,
                MpiSymbol::Pack,
                MpiSymbol::Unpack,
                MpiSymbol::PackSize,
                MpiSymbol::Send,
                MpiSymbol::Recv,
            ]
            .into_iter()
            .collect(),
        }
    }

    /// No interposition (TEMPI absent from the link order): everything
    /// resolves to the system MPI.
    pub fn system_only() -> Self {
        Linker {
            overrides: HashSet::new(),
        }
    }

    /// A custom override set (for experiments interposing a subset).
    pub fn with_overrides(symbols: impl IntoIterator<Item = MpiSymbol>) -> Self {
        Linker {
            overrides: symbols.into_iter().collect(),
        }
    }

    /// Resolve one symbol.
    pub fn resolve(&self, sym: MpiSymbol) -> Provider {
        if self.overrides.contains(&sym) {
            Provider::Tempi
        } else {
            Provider::System
        }
    }
}

/// The application-facing MPI: TEMPI state + the resolution table, over a
/// system-MPI rank context.
pub struct InterposedMpi {
    /// The interposed library's state.
    pub tempi: Tempi,
    linker: Linker,
    /// Resolution log: which provider served each call, in order.
    pub log: Vec<(MpiSymbol, Provider)>,
}

impl InterposedMpi {
    /// Build with TEMPI interposed (the normal deployment).
    pub fn new(config: TempiConfig) -> Self {
        InterposedMpi {
            tempi: Tempi::new(config),
            linker: Linker::with_tempi(),
            log: Vec::new(),
        }
    }

    /// Build with TEMPI interposed, configured from `TEMPI_*` environment
    /// variables (see [`TempiConfig::from_env`]) — how the real library is
    /// tuned without touching the application.
    pub fn from_env() -> Result<Self, String> {
        Ok(Self::new(TempiConfig::from_env()?))
    }

    /// Build without TEMPI in the link order (pure system MPI baseline).
    pub fn system_only() -> Self {
        InterposedMpi {
            tempi: Tempi::new(TempiConfig::default()),
            linker: Linker::system_only(),
            log: Vec::new(),
        }
    }

    /// Build with a custom linker.
    pub fn with_linker(config: TempiConfig, linker: Linker) -> Self {
        InterposedMpi {
            tempi: Tempi::new(config),
            linker,
            log: Vec::new(),
        }
    }

    fn resolve(&mut self, sym: MpiSymbol) -> Provider {
        let p = self.linker.resolve(sym);
        self.log.push((sym, p));
        p
    }

    /// TEMPI's counters (plan-cache hits, tuner probes/bucket hits,
    /// buffer-pool reuse, …) — the interposed library's observability
    /// surface, exposed without reaching into [`Tempi`] internals.
    pub fn stats(&self) -> &crate::tempi::TempiStats {
        &self.tempi.stats
    }

    /// Publish the interposed library's counters into `tracer`'s metrics
    /// registry (see [`Tempi::publish_metrics`]).
    pub fn publish_metrics(&self, tracer: &tempi_trace::Tracer) {
        self.tempi.publish_metrics(tracer);
    }

    /// The tuner mode the interposed library is running with (`TEMPI_TUNER`).
    pub fn tuner_mode(&self) -> crate::config::TunerMode {
        self.tempi.tuner.mode()
    }

    /// `MPI_Type_commit`. TEMPI's version performs the native commit and
    /// then the translation/transformation/kernel-selection pipeline.
    pub fn type_commit(&mut self, ctx: &mut RankCtx, dt: Datatype) -> MpiResult<()> {
        match self.resolve(MpiSymbol::TypeCommit) {
            Provider::Tempi => {
                self.tempi.type_commit(ctx, dt)?;
                Ok(())
            }
            Provider::System => ctx.type_commit_native(dt),
        }
    }

    /// `MPI_Pack`.
    #[allow(clippy::too_many_arguments)]
    pub fn pack(
        &mut self,
        ctx: &mut RankCtx,
        inbuf: GpuPtr,
        incount: usize,
        dt: Datatype,
        outbuf: GpuPtr,
        outsize: usize,
        position: &mut usize,
    ) -> MpiResult<()> {
        match self.resolve(MpiSymbol::Pack) {
            Provider::Tempi => self
                .tempi
                .pack(ctx, inbuf, incount, dt, outbuf, outsize, position),
            Provider::System => system_pack(ctx, inbuf, incount, dt, outbuf, outsize, position),
        }
    }

    /// `MPI_Unpack`.
    #[allow(clippy::too_many_arguments)]
    pub fn unpack(
        &mut self,
        ctx: &mut RankCtx,
        inbuf: GpuPtr,
        insize: usize,
        position: &mut usize,
        outbuf: GpuPtr,
        outcount: usize,
        dt: Datatype,
    ) -> MpiResult<()> {
        match self.resolve(MpiSymbol::Unpack) {
            Provider::Tempi => self
                .tempi
                .unpack(ctx, inbuf, insize, position, outbuf, outcount, dt),
            Provider::System => system_unpack(ctx, inbuf, insize, position, outbuf, outcount, dt),
        }
    }

    /// `MPI_Pack_size`.
    pub fn pack_size(
        &mut self,
        ctx: &mut RankCtx,
        incount: usize,
        dt: Datatype,
    ) -> MpiResult<usize> {
        match self.resolve(MpiSymbol::PackSize) {
            Provider::Tempi => self.tempi.pack_size(ctx, incount, dt),
            Provider::System => Ok(ctx.type_size(dt)? as usize * incount),
        }
    }

    /// `MPI_Send`. Returns the method TEMPI used, if it accelerated the
    /// call.
    pub fn send(
        &mut self,
        ctx: &mut RankCtx,
        buf: GpuPtr,
        count: usize,
        dt: Datatype,
        dest: usize,
        tag: i32,
    ) -> MpiResult<Option<Method>> {
        match self.resolve(MpiSymbol::Send) {
            Provider::Tempi => self.tempi.send(ctx, buf, count, dt, dest, tag),
            Provider::System => {
                ctx.send(buf, count, dt, dest, tag)?;
                Ok(None)
            }
        }
    }

    /// `MPI_Recv`.
    pub fn recv(
        &mut self,
        ctx: &mut RankCtx,
        buf: GpuPtr,
        count: usize,
        dt: Datatype,
        src: Option<usize>,
        tag: Option<i32>,
    ) -> MpiResult<Status> {
        match self.resolve(MpiSymbol::Recv) {
            Provider::Tempi => Ok(self.tempi.recv(ctx, buf, count, dt, src, tag)?.0),
            Provider::System => ctx.recv(buf, count, dt, src, tag),
        }
    }

    /// `MPI_Alltoallv` on bytes. TEMPI does not override this symbol — the
    /// call demonstrates automatic fall-through to the system MPI (the
    /// paper's stencil packs with TEMPI, then exchanges with the system
    /// `MPI_Alltoallv`).
    #[allow(clippy::too_many_arguments)]
    pub fn alltoallv_bytes(
        &mut self,
        ctx: &mut RankCtx,
        sendbuf: GpuPtr,
        sendcounts: &[usize],
        sdispls: &[usize],
        recvbuf: GpuPtr,
        recvcounts: &[usize],
        rdispls: &[usize],
    ) -> MpiResult<()> {
        // not in the override set → always the system implementation
        let _ = self.resolve(MpiSymbol::Alltoallv);
        ctx.alltoallv_bytes(sendbuf, sendcounts, sdispls, recvbuf, recvcounts, rdispls)
    }

    /// Sparse-neighborhood `MPI_Alltoallv` (same fall-through as
    /// [`InterposedMpi::alltoallv_bytes`], O(degree) argument lists): the
    /// shape the stencil uses at scale, where walking a world-sized count
    /// array per rank would dominate a 10,000-rank exchange.
    pub fn alltoallv_sparse_bytes(
        &mut self,
        ctx: &mut RankCtx,
        sendbuf: GpuPtr,
        sends: &[AlltoallvBlock],
        recvbuf: GpuPtr,
        recvs: &[AlltoallvBlock],
    ) -> MpiResult<()> {
        let _ = self.resolve(MpiSymbol::Alltoallv);
        ctx.alltoallv_sparse_bytes(sendbuf, sends, recvbuf, recvs)
    }

    /// `MPI_Barrier` over the *current* communicator members. TEMPI does
    /// not override this symbol — the checkpoint two-phase commit uses it
    /// as the snapshot barrier, and it falls through to the system MPI's
    /// dissemination barrier (which is shrink-safe).
    pub fn barrier(&mut self, ctx: &mut RankCtx) -> MpiResult<()> {
        let _ = self.resolve(MpiSymbol::Barrier);
        ctx.comm_barrier()
    }

    /// `MPIX_Comm_revoke` (ULFM). Fault-tolerance entry points are not
    /// datatype symbols, so TEMPI never exports them — they always fall
    /// through to the system MPI, and the log records that.
    pub fn comm_revoke(&mut self, ctx: &mut RankCtx) -> MpiResult<()> {
        let _ = self.resolve(MpiSymbol::CommRevoke);
        ctx.revoke()
    }

    /// `MPIX_Comm_shrink` (ULFM): agree on the failed set, renumber the
    /// survivors densely, bump the communicator epoch. Returns the world
    /// ranks that were excluded. Always the system implementation.
    pub fn comm_shrink(&mut self, ctx: &mut RankCtx) -> MpiResult<Vec<usize>> {
        let _ = self.resolve(MpiSymbol::CommShrink);
        ctx.shrink()
    }

    /// `MPIX_Comm_agree` (ULFM, specialized to failure detection): every
    /// survivor returns the identical set of failed world ranks. Always
    /// the system implementation.
    pub fn comm_agree(&mut self, ctx: &mut RankCtx) -> MpiResult<Vec<usize>> {
        let _ = self.resolve(MpiSymbol::CommAgree);
        ctx.agree_on_failures()
    }
}

/// The system MPI's `MPI_Pack` (vendor baseline behavior) — what runs when
/// TEMPI is not interposed.
#[allow(clippy::too_many_arguments)]
pub fn system_pack(
    ctx: &mut RankCtx,
    inbuf: GpuPtr,
    incount: usize,
    dt: Datatype,
    outbuf: GpuPtr,
    outsize: usize,
    position: &mut usize,
) -> MpiResult<()> {
    use mpi_sim::datatype::typemap::segments;
    use mpi_sim::{Combiner, MpiError};
    if !ctx.is_committed(dt)? {
        return Err(MpiError::NotCommitted);
    }
    let reg = ctx.registry().clone();
    let (segs, attrs, envelope) = {
        let reg = reg.read();
        (segments(&reg, dt)?, reg.attrs(dt)?, reg.get_envelope(dt)?)
    };
    let root_is_vector = matches!(envelope.combiner, Combiner::Vector);
    let bytes = attrs.size as usize * incount;
    if *position + bytes > outsize {
        return Err(MpiError::BufferTooSmall {
            required: *position + bytes,
            available: outsize,
            envelope: Some(envelope),
        });
    }
    if inbuf.space.device_accessible() && outbuf.space.device_accessible() {
        let vendor = ctx.vendor.clone();
        mpi_sim::vendor::baseline_gpu_pack(
            &vendor,
            &mut ctx.stream,
            &mut ctx.clock,
            &segs,
            attrs.extent(),
            root_is_vector,
            inbuf,
            incount,
            outbuf.add(*position),
            &mut 0,
        )?;
        *position += bytes;
        return Ok(());
    }
    // host path: CPU pack
    let mut mem = ctx.gpu.memory();
    let mut pos = *position;
    for item in 0..incount {
        let base = item as i64 * attrs.extent();
        for seg in &segs {
            let s = inbuf
                .offset_by(base + seg.off)
                .ok_or_else(|| MpiError::InvalidArg("reaches before buffer".to_string()))?;
            let data = mem.peek(s, seg.len as usize)?;
            mem.poke(outbuf.add(pos), &data)?;
            pos += seg.len as usize;
        }
    }
    drop(mem);
    ctx.clock
        .advance(ctx.vendor.host_pack_time(bytes, segs.len() * incount));
    *position = pos;
    Ok(())
}

/// The system MPI's `MPI_Unpack` (vendor baseline behavior).
#[allow(clippy::too_many_arguments)]
pub fn system_unpack(
    ctx: &mut RankCtx,
    inbuf: GpuPtr,
    insize: usize,
    position: &mut usize,
    outbuf: GpuPtr,
    outcount: usize,
    dt: Datatype,
) -> MpiResult<()> {
    use mpi_sim::datatype::typemap::segments;
    use mpi_sim::{Combiner, MpiError};
    if !ctx.is_committed(dt)? {
        return Err(MpiError::NotCommitted);
    }
    let reg = ctx.registry().clone();
    let (segs, attrs, envelope) = {
        let reg = reg.read();
        (segments(&reg, dt)?, reg.attrs(dt)?, reg.get_envelope(dt)?)
    };
    let root_is_vector = matches!(envelope.combiner, Combiner::Vector);
    let bytes = attrs.size as usize * outcount;
    if *position + bytes > insize {
        return Err(MpiError::BufferTooSmall {
            required: *position + bytes,
            available: insize,
            envelope: Some(envelope),
        });
    }
    if inbuf.space.device_accessible() && outbuf.space.device_accessible() {
        let vendor = ctx.vendor.clone();
        mpi_sim::vendor::baseline_gpu_unpack(
            &vendor,
            &mut ctx.stream,
            &mut ctx.clock,
            &segs,
            attrs.extent(),
            root_is_vector,
            inbuf.add(*position),
            &mut 0,
            outbuf,
            outcount,
        )?;
        *position += bytes;
        return Ok(());
    }
    let mut mem = ctx.gpu.memory();
    let mut pos = *position;
    for item in 0..outcount {
        let base = item as i64 * attrs.extent();
        for seg in &segs {
            let d = outbuf
                .offset_by(base + seg.off)
                .ok_or_else(|| MpiError::InvalidArg("reaches before buffer".to_string()))?;
            let data = mem.peek(inbuf.add(pos), seg.len as usize)?;
            mem.poke(d, &data)?;
            pos += seg.len as usize;
        }
    }
    drop(mem);
    ctx.clock
        .advance(ctx.vendor.host_pack_time(bytes, segs.len() * outcount));
    *position = pos;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpi_sim::consts::*;
    use mpi_sim::WorldConfig;

    fn ctx() -> RankCtx {
        RankCtx::standalone(&WorldConfig::summit(1))
    }

    #[test]
    fn linker_resolves_overridden_symbols_to_tempi() {
        let l = Linker::with_tempi();
        assert_eq!(l.resolve(MpiSymbol::Pack), Provider::Tempi);
        assert_eq!(l.resolve(MpiSymbol::TypeCommit), Provider::Tempi);
        // TEMPI does not export Alltoallv → system
        assert_eq!(l.resolve(MpiSymbol::Alltoallv), Provider::System);
    }

    #[test]
    fn system_only_linker_resolves_everything_to_system() {
        let l = Linker::system_only();
        for s in [MpiSymbol::Pack, MpiSymbol::Send, MpiSymbol::TypeCommit] {
            assert_eq!(l.resolve(s), Provider::System);
        }
    }

    #[test]
    fn interposed_commit_builds_plan_and_logs() {
        let mut ctx = ctx();
        let mut mpi = InterposedMpi::new(TempiConfig::default());
        let dt = ctx.type_vector(4, 2, 8, MPI_FLOAT).unwrap();
        mpi.type_commit(&mut ctx, dt).unwrap();
        assert!(mpi.tempi.plan(dt).is_some());
        assert_eq!(mpi.log, vec![(MpiSymbol::TypeCommit, Provider::Tempi)]);
        // and the system registry saw the commit too (native commit ran)
        assert!(ctx.is_committed(dt).unwrap());
    }

    #[test]
    fn system_only_commit_builds_no_plan() {
        let mut ctx = ctx();
        let mut mpi = InterposedMpi::system_only();
        let dt = ctx.type_vector(4, 2, 8, MPI_FLOAT).unwrap();
        mpi.type_commit(&mut ctx, dt).unwrap();
        assert!(mpi.tempi.plan(dt).is_none());
        assert!(ctx.is_committed(dt).unwrap());
        assert_eq!(mpi.log, vec![(MpiSymbol::TypeCommit, Provider::System)]);
    }

    #[test]
    fn tempi_pack_beats_system_pack_on_gpu_buffers() {
        // same operation through both resolution tables; identical bytes,
        // very different virtual cost
        let run = |interposed: bool| -> (Vec<u8>, gpu_sim::SimTime) {
            let mut ctx = ctx();
            let mut mpi = if interposed {
                InterposedMpi::new(TempiConfig::default())
            } else {
                InterposedMpi::system_only()
            };
            let dt = ctx.type_vector(64, 4, 64, MPI_BYTE).unwrap();
            mpi.type_commit(&mut ctx, dt).unwrap();
            let src = ctx.gpu.malloc(64 * 64).unwrap();
            let data: Vec<u8> = (0..64 * 64).map(|i| (i % 251) as u8).collect();
            ctx.gpu.memory().poke(src, &data).unwrap();
            let dst = ctx.gpu.malloc(256).unwrap();
            let t0 = ctx.clock.now();
            let mut pos = 0;
            mpi.pack(&mut ctx, src, 1, dt, dst, 256, &mut pos).unwrap();
            assert_eq!(pos, 256);
            let bytes = ctx.gpu.memory().peek(dst, 256).unwrap();
            (bytes, ctx.clock.now() - t0)
        };
        let (tempi_bytes, tempi_t) = run(true);
        let (system_bytes, system_t) = run(false);
        assert_eq!(tempi_bytes, system_bytes, "functional equivalence");
        assert!(
            tempi_t * 5 < system_t,
            "TEMPI {tempi_t} should be far below system {system_t}"
        );
    }

    #[test]
    fn alltoallv_self_exchange_works_and_logs_system() {
        let mut ctx = ctx();
        let mut mpi = InterposedMpi::new(TempiConfig::default());
        let send = ctx.gpu.host_alloc(8).unwrap();
        let recv = ctx.gpu.host_alloc(8).unwrap();
        ctx.gpu.memory().poke(send, &[9u8; 8]).unwrap();
        mpi.alltoallv_bytes(&mut ctx, send, &[8], &[0], recv, &[8], &[0])
            .unwrap();
        assert_eq!(ctx.gpu.memory().peek(recv, 8).unwrap(), vec![9u8; 8]);
        assert_eq!(
            mpi.log.last(),
            Some(&(MpiSymbol::Alltoallv, Provider::System))
        );
    }

    #[test]
    fn ulfm_symbols_always_fall_through_to_system() {
        let l = Linker::with_tempi();
        assert_eq!(l.resolve(MpiSymbol::CommRevoke), Provider::System);
        assert_eq!(l.resolve(MpiSymbol::CommShrink), Provider::System);
        assert_eq!(l.resolve(MpiSymbol::CommAgree), Provider::System);

        let mut ctx = ctx();
        let mut mpi = InterposedMpi::new(TempiConfig::default());
        // single-rank world: agree finds nothing, shrink keeps everyone
        assert_eq!(mpi.comm_agree(&mut ctx).unwrap(), Vec::<usize>::new());
        assert_eq!(mpi.comm_shrink(&mut ctx).unwrap(), Vec::<usize>::new());
        mpi.comm_revoke(&mut ctx).unwrap();
        assert!(ctx.is_revoked());
        assert_eq!(
            mpi.log,
            vec![
                (MpiSymbol::CommAgree, Provider::System),
                (MpiSymbol::CommShrink, Provider::System),
                (MpiSymbol::CommRevoke, Provider::System),
            ]
        );
    }

    #[test]
    fn pack_size_both_providers_agree() {
        let mut ctx = ctx();
        let dt = ctx.type_vector(13, 100, 128, MPI_FLOAT).unwrap();
        let mut a = InterposedMpi::new(TempiConfig::default());
        let mut b = InterposedMpi::system_only();
        a.type_commit(&mut ctx, dt).unwrap();
        assert_eq!(
            a.pack_size(&mut ctx, 3, dt).unwrap(),
            b.pack_size(&mut ctx, 3, dt).unwrap()
        );
    }
}
