//! The Section-5 performance model of datatype-accelerated MPI primitives.
//!
//! The interposer cannot reach inside the system MPI, so a non-contiguous
//! send must be composed from packing and contiguous transfers. The paper
//! models three compositions:
//!
//! ```text
//! T_device  = T_gpu-pack  + T_gpu-gpu            + T_gpu-unpack     (Eq. 1)
//! T_oneshot = T_host-pack + T_cpu-cpu            + T_host-unpack    (Eq. 2)
//! T_staged  = T_gpu-pack  + T_d2h + T_cpu-cpu + T_h2d + T_gpu-unpack (Eq. 3)
//! ```
//!
//! and shows that — contrary to prior work's preference for one-shot — the
//! *device* method wins for larger, less-contiguous objects, while
//! one-shot wins for smaller, more-contiguous ones, and staged is never
//! competitive. [`SendModel::choose`] is the decision TEMPI applies per
//! send; the figure harnesses evaluate the same equations to regenerate
//! Figs. 8, 10 and 11.

use std::sync::Arc;

use gpu_sim::{CopyKind, GpuCostModel, PackDir, PackTarget, SimTime};
use mpi_sim::{NetModel, Transport};
use serde::{Deserialize, Serialize};

use crate::config::Method;

/// The model, parameterized by the calibrated GPU and network models and a
/// (source, destination) rank placement.
///
/// The cost tables are `Arc`-shared rather than owned: the send hot path
/// builds one of these per call, and an Arc bump must be all that costs.
#[derive(Debug, Clone)]
pub struct SendModel {
    /// GPU cost model (pack kernels, DMA engine).
    pub gpu: Arc<GpuCostModel>,
    /// Fabric model.
    pub net: Arc<NetModel>,
    /// Source rank (placement decides intra- vs inter-node).
    pub src: usize,
    /// Destination rank.
    pub dst: usize,
}

/// A modeled time split into its equation terms (for Figs. 8b/10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Breakdown {
    /// Pack term.
    pub pack: SimTime,
    /// Wire / staging terms (everything between pack and unpack).
    pub transfer: SimTime,
    /// Unpack term.
    pub unpack: SimTime,
}

impl Breakdown {
    /// Sum of the terms.
    pub fn total(&self) -> SimTime {
        self.pack + self.transfer + self.unpack
    }
}

/// Per-chunk stage durations of the §8 pipeline (see
/// [`SendModel::pipeline_terms`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineTerms {
    /// Per-chunk device pack (launch + kernel, no sync).
    pub pack: SimTime,
    /// Per-chunk D2H copy (memcpy overhead + engine time).
    pub d2h: SimTime,
    /// Per-chunk CPU wire transfer.
    pub wire: SimTime,
    /// Per-chunk H2D copy on the receiver.
    pub h2d: SimTime,
    /// Per-chunk device unpack (launch + kernel, no sync).
    pub unpack: SimTime,
    /// Number of chunks.
    pub n: u64,
    /// One trailing stream synchronize.
    pub sync: SimTime,
}

impl PipelineTerms {
    /// Pipeline bound: fill (one traversal of every stage) plus `(n-1)`
    /// repetitions of the bottleneck stage, plus the trailing sync.
    pub fn total(&self) -> SimTime {
        let fill = self.pack + self.d2h + self.wire + self.h2d + self.unpack;
        let bottleneck = self
            .pack
            .max(self.d2h)
            .max(self.wire)
            .max(self.h2d)
            .max(self.unpack);
        fill + bottleneck * (self.n - 1) + self.sync
    }
}

impl SendModel {
    /// Model with both ranks on different Summit nodes (the paper's
    /// measurement placement).
    pub fn summit_internode() -> Self {
        let net = Arc::new(NetModel::summit());
        SendModel {
            gpu: Arc::new(GpuCostModel::summit_v100()),
            net,
            src: 0,
            dst: 6, // different node (6 ranks/node)
        }
    }

    /// One pack or unpack operation: launch + kernel + synchronize.
    pub fn t_pack(
        &self,
        dir: PackDir,
        target: PackTarget,
        bytes: usize,
        block: usize,
        word: usize,
    ) -> SimTime {
        self.gpu.kernel_launch_overhead
            + self.gpu.pack_kernel_time(dir, target, bytes, block, word)
            + self.gpu.stream_sync_overhead
    }

    /// CUDA-aware GPU–GPU MPI transfer of `bytes` (Fig. 8a upper curve).
    pub fn t_gpu_gpu(&self, bytes: usize) -> SimTime {
        self.net.send_overhead
            + self
                .net
                .transfer_time(bytes, Transport::Gpu, self.src, self.dst)
            + self.net.recv_overhead
    }

    /// CPU–CPU MPI transfer of `bytes` (Fig. 8a lower curve).
    pub fn t_cpu_cpu(&self, bytes: usize) -> SimTime {
        self.net.send_overhead
            + self
                .net
                .transfer_time(bytes, Transport::Cpu, self.src, self.dst)
            + self.net.recv_overhead
    }

    /// `cudaMemcpyAsync` D2H + synchronize (Fig. 8a).
    pub fn t_d2h(&self, bytes: usize) -> SimTime {
        self.gpu.memcpy_async_overhead
            + self.gpu.copy_engine_time(CopyKind::D2H, bytes)
            + self.gpu.stream_sync_overhead
    }

    /// `cudaMemcpyAsync` H2D + synchronize (Fig. 8a).
    pub fn t_h2d(&self, bytes: usize) -> SimTime {
        self.gpu.memcpy_async_overhead
            + self.gpu.copy_engine_time(CopyKind::H2D, bytes)
            + self.gpu.stream_sync_overhead
    }

    /// Equation 1: the device method.
    pub fn t_device(&self, bytes: usize, block: usize, word: usize) -> Breakdown {
        Breakdown {
            pack: self.t_pack(PackDir::Pack, PackTarget::Device, bytes, block, word),
            transfer: self.t_gpu_gpu(bytes),
            unpack: self.t_pack(PackDir::Unpack, PackTarget::Device, bytes, block, word),
        }
    }

    /// Equation 2: the one-shot method.
    pub fn t_oneshot(&self, bytes: usize, block: usize, word: usize) -> Breakdown {
        Breakdown {
            pack: self.t_pack(PackDir::Pack, PackTarget::MappedHost, bytes, block, word),
            transfer: self.t_cpu_cpu(bytes),
            unpack: self.t_pack(PackDir::Unpack, PackTarget::MappedHost, bytes, block, word),
        }
    }

    /// Equation 3: the staged method.
    pub fn t_staged(&self, bytes: usize, block: usize, word: usize) -> Breakdown {
        Breakdown {
            pack: self.t_pack(PackDir::Pack, PackTarget::Device, bytes, block, word),
            transfer: self.t_d2h(bytes) + self.t_cpu_cpu(bytes) + self.t_h2d(bytes),
            unpack: self.t_pack(PackDir::Unpack, PackTarget::Device, bytes, block, word),
        }
    }

    /// Per-chunk stage terms of the §8 pipeline for a given chunk size.
    /// Exposed separately from [`SendModel::t_pipelined`] so the online
    /// tuner can rescale each stage by its measured/model calibration
    /// ratio without re-deriving the pipeline algebra.
    pub fn pipeline_terms(
        &self,
        bytes: usize,
        block: usize,
        word: usize,
        chunk: usize,
    ) -> PipelineTerms {
        let chunk = chunk.min(bytes).max(1);
        let n = bytes.div_ceil(chunk) as u64;
        let pack = self.gpu.kernel_launch_overhead
            + self
                .gpu
                .pack_kernel_time(PackDir::Pack, PackTarget::Device, chunk, block, word);
        let d2h = self.gpu.memcpy_async_overhead + self.gpu.copy_engine_time(CopyKind::D2H, chunk);
        let wire = self.t_cpu_cpu(chunk);
        let h2d = self.gpu.memcpy_async_overhead + self.gpu.copy_engine_time(CopyKind::H2D, chunk);
        let unpack = self.gpu.kernel_launch_overhead
            + self
                .gpu
                .pack_kernel_time(PackDir::Unpack, PackTarget::Device, chunk, block, word);
        PipelineTerms {
            pack,
            d2h,
            wire,
            h2d,
            unpack,
            n,
            sync: self.gpu.stream_sync_overhead,
        }
    }

    /// The §8 pipelining extension: the staged composition executed in
    /// `chunk`-byte pieces so its four stages (pack kernel, D2H copy, CPU
    /// wire, H2D + unpack) overlap. Classic pipeline bound: one traversal
    /// of every stage plus `(n-1)` repetitions of the slowest stage.
    pub fn t_pipelined(&self, bytes: usize, block: usize, word: usize, chunk: usize) -> SimTime {
        self.pipeline_terms(bytes, block, word, chunk).total()
    }

    /// The per-send decision: device or one-shot, whichever the model says
    /// is faster. (Staged is excluded: Fig. 8b shows the small region where
    /// `T_cpu-cpu < T_gpu-gpu` is not enough to pay for the D2H+H2D trips.)
    pub fn choose(&self, bytes: usize, block: usize, word: usize) -> Method {
        let dev = self.t_device(bytes, block, word).total();
        let osh = self.t_oneshot(bytes, block, word).total();
        if dev <= osh {
            Method::Device
        } else {
            Method::OneShot
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> SendModel {
        SendModel::summit_internode()
    }

    #[test]
    fn gpu_gpu_floor_11us_cpu_cpu_floor_2_2us() {
        let m = m();
        let g = m.t_gpu_gpu(1).as_us_f64();
        let c = m.t_cpu_cpu(1).as_us_f64();
        assert!((g - 11.4).abs() < 0.1, "gpu {g}");
        assert!((c - 2.6).abs() < 0.1, "cpu {c}");
    }

    #[test]
    fn staged_never_beats_device() {
        // Fig. 8b: the cpu-cpu advantage never covers D2H + H2D.
        let m = m();
        for bytes in [1usize << 10, 1 << 16, 1 << 20, 4 << 20, 64 << 20] {
            for block in [8usize, 64, 512, 4096] {
                let dev = m.t_device(bytes, block, 4).total();
                let st = m.t_staged(bytes, block, 4).total();
                assert!(st >= dev, "staged beat device at {bytes}/{block}");
            }
        }
    }

    #[test]
    fn oneshot_wins_small_contiguous_device_wins_large_strided() {
        let m = m();
        // 1 MiB with large blocks: one-shot (Fig. 10a)
        assert_eq!(m.choose(1 << 20, 4096, 8), Method::OneShot);
        // 4 MiB with small blocks: device (Fig. 10b)
        assert_eq!(m.choose(4 << 20, 16, 4), Method::Device);
    }

    #[test]
    fn crossover_moves_with_block_size() {
        // For a fixed 4 MiB object, small blocks favor device (one-shot
        // pack suffers more from the 128 B knee), large blocks favor
        // one-shot-or-tie.
        let m = m();
        let dev_small = m.t_device(4 << 20, 8, 4).total();
        let osh_small = m.t_oneshot(4 << 20, 8, 4).total();
        assert!(dev_small < osh_small);
    }

    #[test]
    fn d2h_h2d_gap_at_1mib_about_80us() {
        // Fig. 8b: around 1 MiB T_cpu-cpu beats T_gpu-gpu by ~80-100 µs,
        // but that saving is consumed by the D2H and H2D transfers — so
        // staged never becomes competitive.
        let m = m();
        let cpu_saving = m
            .t_gpu_gpu(1 << 20)
            .saturating_sub(m.t_cpu_cpu(1 << 20))
            .as_us_f64();
        assert!(
            cpu_saving > 60.0 && cpu_saving < 130.0,
            "saving {cpu_saving} µs"
        );
        let extra = (m.t_d2h(1 << 20) + m.t_h2d(1 << 20)).as_us_f64();
        assert!(
            extra >= cpu_saving,
            "d2h+h2d {extra} must consume {cpu_saving}"
        );
    }

    #[test]
    fn breakdown_total_is_sum() {
        let m = m();
        let b = m.t_device(1 << 20, 64, 4);
        assert_eq!(b.total(), b.pack + b.transfer + b.unpack);
    }

    #[test]
    fn model_is_monotone_in_bytes() {
        let m = m();
        let mut last = SimTime::ZERO;
        for bytes in [1usize << 10, 1 << 14, 1 << 18, 1 << 22] {
            let t = m.t_oneshot(bytes, 512, 8).total();
            assert!(t >= last);
            last = t;
        }
    }
}
