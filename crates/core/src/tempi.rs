//! The TEMPI library state: commit pipeline, interposed `MPI_Pack` /
//! `MPI_Unpack`, and datatype-accelerated `MPI_Send` / `MPI_Recv`.
//!
//! One [`Tempi`] instance lives per rank (per process in the real library).
//! `MPI_Type_commit` runs the paper's three-step pipeline — translation
//! (Algs. 1–4), transformation to canonical form (Algs. 5–7), kernel
//! selection (Alg. 8 + §3.3) — and caches the resulting [`TypePlan`].
//! Pack/unpack and send/recv then dispatch on the cached plan.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use gpu_sim::{CopyKind, GpuPtr, LaunchConfig, MemSpace, PackDir, PackTarget, SimTime};
use mpi_sim::datatype::typemap::segments;
use mpi_sim::{Combiner, Datatype, DegradeEvent, MpiError, MpiResult, RankCtx, Status, Transport};
use serde::{Deserialize, Serialize};
use tempi_trace::{Tracer, LANE_CPU};

use crate::buffers::BufferPool;
use crate::config::{Method, TempiConfig, TunerMode};
use crate::ir::transform::simplify;
use crate::ir::translate::{translate, CountingIntrospect, Translated};
use crate::ir::{strided_block::strided_block, BlockList};
use crate::kernels::{
    execute_blocklist, execute_dma_2d, execute_strided, execute_strided_with, select_kernel,
    KernelKind, KernelPlan,
};
use crate::model::SendModel;
use crate::tuner::{BucketKey, Tuner, Workload, CHUNK_CANDIDATES};

/// CPU cost per IR node per canonicalization pass (tiny; Fig. 6's commit
/// overhead is dominated by the vendor-priced introspection calls).
const CANON_NODE_COST: SimTime = SimTime::from_ns(20);

/// Per-call cost of going through the interposed entry point (plan-cache
/// lookup, buffer bookkeeping). This is why the paper's contiguous and
/// mvapich-specialized-vector cases show speedups slightly *below* 1
/// (0.89×–0.98×): TEMPI does the same work plus this dispatch overhead.
const TEMPI_DISPATCH_OVERHEAD: SimTime = SimTime::from_ns(300);

/// How long (virtual time) a transiently-failed method stays off the
/// degradation ladder for a datatype. Transient faults are load- and
/// state-dependent; a permanent ban would pin a degraded method choice
/// long after the fault cleared, so the rung is re-attempted once the
/// quarantine expires (and re-quarantined if it fails again).
pub const QUARANTINE_TTL: SimTime = SimTime::from_ms(50);

/// What a committed type resolved to.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanKind {
    /// The type denotes no bytes.
    Empty,
    /// A (possibly 1-D) strided object with a selected kernel.
    Strided(KernelPlan),
    /// An irregular block list (indexed-family extension).
    Blocks(BlockList),
    /// Not accelerated; operations fall through to the system MPI.
    Fallback(Combiner),
}

/// Diagnostics from one `MPI_Type_commit` (drives Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommitReport {
    /// MPI introspection calls the translation made (vendor-priced).
    pub introspection_calls: u64,
    /// Fixed-point passes of Alg. 5.
    pub simplify_passes: usize,
    /// IR nodes before canonicalization.
    pub nodes_before: usize,
    /// IR nodes after canonicalization.
    pub nodes_after: usize,
    /// Total virtual time of the commit (native + TEMPI work).
    pub commit_time: SimTime,
}

/// The cached result of committing one datatype.
#[derive(Debug, Clone, PartialEq)]
pub struct TypePlan {
    /// Selected handling.
    pub kind: PlanKind,
    /// `MPI_Type_size` in bytes.
    pub size: u64,
    /// `MPI_Type_get_extent` extent in bytes (item spacing for `incount`).
    pub extent: i64,
    /// Commit diagnostics.
    pub report: CommitReport,
}

impl TypePlan {
    /// Byte length of the innermost contiguous run (drives the cost model
    /// and the method choice).
    pub fn block_bytes(&self) -> usize {
        match &self.kind {
            PlanKind::Empty => 0,
            PlanKind::Strided(kp) => kp.sb.block_bytes() as usize,
            PlanKind::Blocks(bl) => {
                let n = bl.blocks.len().max(1);
                (bl.data_bytes() as usize / n).max(1)
            }
            PlanKind::Fallback(_) => self.size as usize,
        }
    }

    /// Selected word size (1 for non-strided plans).
    pub fn word(&self) -> usize {
        match &self.kind {
            PlanKind::Strided(kp) => kp.word,
            _ => 1,
        }
    }

    /// Is this plan handled by a single plain copy?
    pub fn is_contiguous(&self) -> bool {
        matches!(&self.kind, PlanKind::Strided(kp) if kp.kind == KernelKind::Memcpy1D)
    }
}

/// Operation counters (tests + reporting).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TempiStats {
    /// `MPI_Type_commit` interceptions that built a plan.
    pub commits: u64,
    /// Commits that found an existing plan.
    pub commit_cache_hits: u64,
    /// Interposed pack calls.
    pub pack_calls: u64,
    /// Interposed unpack calls.
    pub unpack_calls: u64,
    /// Accelerated sends using the device method.
    pub device_sends: u64,
    /// Accelerated sends using the one-shot method.
    pub oneshot_sends: u64,
    /// Accelerated sends using the staged method.
    pub staged_sends: u64,
    /// Device-method sends that used the §8 pipelining extension.
    pub pipelined_sends: u64,
    /// Receives that consumed a pipelined multi-part transfer.
    pub pipelined_recvs: u64,
    /// Operations that fell through to the system MPI.
    pub fallbacks: u64,
    /// Sends that were downgraded to a different method after a transient
    /// failure (each also appends a [`DegradeEvent`] to the rank's log).
    pub degraded_sends: u64,
    /// Pack/unpack operations whose kernel path was downgraded to the CPU
    /// copy path after a transient failure.
    pub degraded_xfers: u64,
    /// Operations abandoned because the communicator failed (`PeerGone`,
    /// `Revoked`, `CommFailed`, `Corrupted`). These are *not* degradations:
    /// no rung can route around a dead peer, so the error propagates to the
    /// caller, whose recovery path (revoke → agree → shrink) takes over.
    pub comm_failures: u64,
    /// Coordinated checkpoint generations this rank committed.
    pub checkpoints: u64,
    /// Subdomain restores served from committed checkpoint frames.
    pub restores: u64,
    /// Tuner decisions that were exploration probes (deliberately non-best
    /// methods run to refresh their calibration ratios).
    pub tuner_probes: u64,
    /// Tuner decisions served from a warm (memoized) bucket.
    pub tuner_bucket_hits: u64,
    /// Times the calibrated argmin changed a bucket's memoized method.
    pub tuner_method_switches: u64,
    /// Pool takes satisfied from a pooled buffer (mirror of
    /// [`crate::buffers::BufferPool::hits`], refreshed per operation).
    pub pool_hits: u64,
    /// Fresh pool allocations (mirror of
    /// [`crate::buffers::BufferPool::fresh_allocs`], refreshed per
    /// operation). `pool_hits / (pool_hits + pool_fresh_allocs)` is the
    /// reuse rate; steady state must not grow this counter.
    pub pool_fresh_allocs: u64,
    /// Kernel launches whose geometry (or dynamically derived 2-D plan)
    /// was served from the per-(datatype, count) cache.
    pub launch_cache_hits: u64,
}

/// Human-readable method name for degradation events.
fn method_name(m: Method) -> &'static str {
    match m {
        Method::Device => "Device",
        Method::OneShot => "OneShot",
        Method::Staged => "Staged",
        Method::Pipelined => "Pipelined",
    }
}

/// Append one downgrade to the rank's degradation-event log.
fn record_degrade(ctx: &mut RankCtx, dt: Datatype, from: &str, to: &str, err: &MpiError) {
    let ev = DegradeEvent {
        at: ctx.clock.now(),
        datatype: ctx.describe(dt),
        from: from.to_string(),
        to: to.to_string(),
        cause: err.to_string(),
    };
    ctx.faults.stats.record(ev);
}

/// Per-rank TEMPI library state.
pub struct Tempi {
    /// Configuration switches (ablations, forced methods).
    pub config: TempiConfig,
    /// Intermediate-buffer pool.
    pub pool: BufferPool,
    /// Operation counters.
    pub stats: TempiStats,
    /// Online send-method autotuner: component calibration plus per-bucket
    /// memoized decisions (see [`crate::tuner`]).
    pub tuner: Tuner,
    cache: HashMap<Datatype, Arc<TypePlan>>,
    /// Launch geometry per (datatype, incount): steady-state sends skip
    /// the grid/block derivation entirely.
    launch_cache: HashMap<(Datatype, usize), LaunchConfig>,
    /// Dynamically derived 2-D plans for contiguous-with-padding packs,
    /// per (datatype, incount): the reshape allocates stride vectors, so
    /// the hot path must build it once, not per send.
    reshape_cache: HashMap<(Datatype, usize), KernelPlan>,
    /// Send methods that failed transiently for a datatype, with the
    /// virtual time their quarantine expires; until then, sends of that
    /// type skip them (part of the degradation ladder).
    quarantine: HashMap<(Datatype, Method), SimTime>,
    /// Datatypes whose kernel pack/unpack path failed transiently;
    /// subsequent pack/unpack calls go straight to the CPU copy path.
    pack_quarantine: HashSet<Datatype>,
}

impl Default for Tempi {
    fn default() -> Self {
        Self::new(TempiConfig::default())
    }
}

impl Tempi {
    /// Fresh library state with the given configuration.
    pub fn new(config: TempiConfig) -> Self {
        let tuner = Tuner::new(config.tuner, config.tuner_seed);
        Tempi {
            config,
            pool: BufferPool::new(),
            stats: TempiStats::default(),
            tuner,
            cache: HashMap::new(),
            launch_cache: HashMap::new(),
            reshape_cache: HashMap::new(),
            quarantine: HashMap::new(),
            pack_quarantine: HashSet::new(),
        }
    }

    /// Is `method` quarantined for `dt` at virtual time `now`? Entries
    /// older than [`QUARANTINE_TTL`] no longer count: the rung is eligible
    /// again and will be re-quarantined if it fails again.
    pub fn is_quarantined(&self, dt: Datatype, method: Method, now: SimTime) -> bool {
        self.quarantine
            .get(&(dt, method))
            .is_some_and(|&until| now < until)
    }

    /// Copy the pool counters into the stats snapshot so callers reading
    /// `TempiStats` see the current reuse rate.
    fn sync_pool_stats(&mut self) {
        self.stats.pool_hits = self.pool.hits;
        self.stats.pool_fresh_allocs = self.pool.fresh_allocs;
    }

    /// The cached plan for a committed type, if any.
    pub fn plan(&self, dt: Datatype) -> Option<Arc<TypePlan>> {
        self.cache.get(&dt).cloned()
    }

    /// Publish every [`TempiStats`] counter into `tracer`'s metrics
    /// registry under `tempi.*` names. Counters accumulate: call this once
    /// per rank at export time (the CLI does, before writing the JSONL
    /// dump), not per operation.
    pub fn publish_metrics(&self, tracer: &Tracer) {
        if !tracer.enabled() {
            return;
        }
        let s = &self.stats;
        tracer.count("tempi.commits", s.commits);
        tracer.count("tempi.commit_cache_hits", s.commit_cache_hits);
        tracer.count("tempi.pack_calls", s.pack_calls);
        tracer.count("tempi.unpack_calls", s.unpack_calls);
        tracer.count("tempi.device_sends", s.device_sends);
        tracer.count("tempi.oneshot_sends", s.oneshot_sends);
        tracer.count("tempi.staged_sends", s.staged_sends);
        tracer.count("tempi.pipelined_sends", s.pipelined_sends);
        tracer.count("tempi.pipelined_recvs", s.pipelined_recvs);
        tracer.count("tempi.fallbacks", s.fallbacks);
        tracer.count("tempi.degraded_sends", s.degraded_sends);
        tracer.count("tempi.degraded_xfers", s.degraded_xfers);
        tracer.count("tempi.comm_failures", s.comm_failures);
        tracer.count("tempi.checkpoints", s.checkpoints);
        tracer.count("tempi.restores", s.restores);
        tracer.count("tempi.tuner_probes", s.tuner_probes);
        tracer.count("tempi.tuner_bucket_hits", s.tuner_bucket_hits);
        tracer.count("tempi.tuner_method_switches", s.tuner_method_switches);
        tracer.count("tempi.pool_hits", s.pool_hits);
        tracer.count("tempi.pool_fresh_allocs", s.pool_fresh_allocs);
        tracer.count("tempi.launch_cache_hits", s.launch_cache_hits);
    }

    /// TEMPI's `MPI_Type_commit` (paper §3): native commit, then
    /// translation → transformation → kernel selection, cached per type.
    pub fn type_commit(&mut self, ctx: &mut RankCtx, dt: Datatype) -> MpiResult<Arc<TypePlan>> {
        if let Some(p) = self.cache.get(&dt) {
            self.stats.commit_cache_hits += 1;
            return Ok(Arc::clone(p));
        }
        ctx.with_span("tempi", "type_commit", |ctx| self.type_commit_body(ctx, dt))
    }

    /// The traced body of [`Tempi::type_commit`], with nested spans for
    /// the translation and canonicalization pipeline stages.
    fn type_commit_body(&mut self, ctx: &mut RankCtx, dt: Datatype) -> MpiResult<Arc<TypePlan>> {
        let pid = ctx.world_rank as u32;
        let t0 = ctx.clock.now();
        ctx.type_commit_native(dt)?;

        let t_tr = ctx.clock.now();
        let mut counting = CountingIntrospect::new(ctx);
        let translated = if self.config.extend_struct {
            crate::ir::translate::translate_struct_blocks(&mut counting, dt)?
        } else {
            translate(&mut counting, dt)?
        };
        let introspection_calls = counting.calls;
        ctx.tracer.complete(
            pid,
            LANE_CPU,
            "tempi",
            "translate",
            t_tr.as_ps(),
            (ctx.clock.now() - t_tr).as_ps(),
            || vec![("introspection_calls", introspection_calls.into())],
        );

        let (kind, passes, nodes_before, nodes_after) = match translated {
            Translated::Empty => (PlanKind::Empty, 0, 0, 0),
            Translated::Blocks(bl) => {
                let n = bl.blocks.len();
                (PlanKind::Blocks(bl), 0, n, n)
            }
            Translated::Unsupported(c) => (PlanKind::Fallback(c), 0, 0, 0),
            Translated::Strided(tree) => {
                let nodes_before = tree.node_count();
                let t_canon = ctx.clock.now();
                let (canon, passes) = if self.config.canonicalize {
                    simplify(tree)
                } else {
                    (tree, 0)
                };
                let nodes_after = canon.node_count();
                ctx.clock
                    .advance(CANON_NODE_COST * (nodes_before * (passes + 1)) as u64);
                ctx.tracer.complete(
                    pid,
                    LANE_CPU,
                    "tempi",
                    "canonicalize",
                    t_canon.as_ps(),
                    (ctx.clock.now() - t_canon).as_ps(),
                    || {
                        vec![
                            ("passes", passes.into()),
                            ("nodes_before", nodes_before.into()),
                            ("nodes_after", nodes_after.into()),
                        ]
                    },
                );
                match strided_block(&canon) {
                    Some(sb) => {
                        let kp = select_kernel(sb, self.config.force_word);
                        ctx.tracer.debug_instant(
                            pid,
                            LANE_CPU,
                            "tempi",
                            "kernel_select",
                            ctx.clock.now().as_ps(),
                            || {
                                vec![
                                    ("kind", format!("{:?}", kp.kind).into()),
                                    ("word", kp.word.into()),
                                ]
                            },
                        );
                        (PlanKind::Strided(kp), passes, nodes_before, nodes_after)
                    }
                    None => (
                        PlanKind::Fallback(ctx.combiner(dt)?),
                        passes,
                        nodes_before,
                        nodes_after,
                    ),
                }
            }
        };
        let attrs = ctx.attrs(dt)?;
        let plan = Arc::new(TypePlan {
            kind,
            size: attrs.size,
            extent: attrs.extent(),
            report: CommitReport {
                introspection_calls,
                simplify_passes: passes,
                nodes_before,
                nodes_after,
                commit_time: ctx.clock.now() - t0,
            },
        });
        self.cache.insert(dt, Arc::clone(&plan));
        self.stats.commits += 1;
        Ok(plan)
    }

    /// Fetch the plan, lazily committing if the type was committed through
    /// the system MPI before TEMPI was interposed.
    fn plan_or_commit(&mut self, ctx: &mut RankCtx, dt: Datatype) -> MpiResult<Arc<TypePlan>> {
        if let Some(p) = self.cache.get(&dt) {
            return Ok(Arc::clone(p));
        }
        if !ctx.is_committed(dt)? {
            return Err(MpiError::NotCommitted);
        }
        self.type_commit(ctx, dt)
    }

    /// `MPI_Pack_size`.
    pub fn pack_size(
        &mut self,
        ctx: &mut RankCtx,
        incount: usize,
        dt: Datatype,
    ) -> MpiResult<usize> {
        Ok(self.plan_or_commit(ctx, dt)?.size as usize * incount)
    }

    /// TEMPI's `MPI_Pack`: pack `incount` items of `dt` from `inbuf` into
    /// `outbuf[*position..outsize]`, advancing `*position`. GPU buffers use
    /// the selected kernel; host-only calls use CPU packing like the system
    /// MPI.
    #[allow(clippy::too_many_arguments)]
    pub fn pack(
        &mut self,
        ctx: &mut RankCtx,
        inbuf: GpuPtr,
        incount: usize,
        dt: Datatype,
        outbuf: GpuPtr,
        outsize: usize,
        position: &mut usize,
    ) -> MpiResult<()> {
        self.stats.pack_calls += 1;
        ctx.clock.advance(TEMPI_DISPATCH_OVERHEAD);
        let r = ctx.with_span("tempi", "MPI_Pack", |ctx| {
            self.xfer(
                ctx,
                PackDir::Pack,
                inbuf,
                incount,
                dt,
                outbuf,
                outsize,
                position,
            )
        });
        self.sync_pool_stats();
        r
    }

    /// TEMPI's `MPI_Unpack`: mirror of [`Tempi::pack`] (`inbuf` holds
    /// packed bytes at `*position..insize`; `outbuf` is the strided
    /// destination).
    #[allow(clippy::too_many_arguments)]
    pub fn unpack(
        &mut self,
        ctx: &mut RankCtx,
        inbuf: GpuPtr,
        insize: usize,
        position: &mut usize,
        outbuf: GpuPtr,
        outcount: usize,
        dt: Datatype,
    ) -> MpiResult<()> {
        self.stats.unpack_calls += 1;
        ctx.clock.advance(TEMPI_DISPATCH_OVERHEAD);
        let r = ctx.with_span("tempi", "MPI_Unpack", |ctx| {
            self.xfer(
                ctx,
                PackDir::Unpack,
                outbuf,
                outcount,
                dt,
                inbuf,
                insize,
                position,
            )
        });
        self.sync_pool_stats();
        r
    }

    /// Shared pack/unpack dispatch. `strided` is the datatype-shaped
    /// buffer, `packed` the contiguous one.
    #[allow(clippy::too_many_arguments)]
    fn xfer(
        &mut self,
        ctx: &mut RankCtx,
        dir: PackDir,
        strided: GpuPtr,
        count: usize,
        dt: Datatype,
        packed: GpuPtr,
        packed_size: usize,
        position: &mut usize,
    ) -> MpiResult<()> {
        let plan = self.plan_or_commit(ctx, dt)?;
        let bytes = plan.size as usize * count;
        if *position + bytes > packed_size {
            return Err(MpiError::BufferTooSmall {
                required: *position + bytes,
                available: packed_size,
                envelope: ctx.registry().read().get_envelope(dt).ok(),
            });
        }
        if bytes == 0 {
            return Ok(());
        }

        let strided_dev = strided.space.device_accessible();
        let packed_dev = packed.space.device_accessible();

        if strided_dev && !self.pack_quarantine.contains(&dt) {
            let r = if packed_dev {
                self.gpu_xfer(ctx, dir, &plan, strided, count, dt, packed, *position)
            } else {
                self.staged_host_xfer(
                    ctx, dir, &plan, strided, count, dt, packed, *position, bytes,
                )
            };
            match r {
                Ok(()) => {
                    *position += bytes;
                    return Ok(());
                }
                Err(e) if e.is_transient() => {
                    // Kernel path hit an injected GPU fault: quarantine it
                    // for this datatype and fall back to the CPU copy path,
                    // which touches no GPU resources.
                    self.pack_quarantine.insert(dt);
                    self.stats.degraded_xfers += 1;
                    record_degrade(ctx, dt, "Kernel", "HostCopy", &e);
                }
                Err(e) => return Err(e),
            }
        }

        // Host-side strided data (or a quarantined kernel path): CPU
        // pack/unpack, as the system MPI would do — TEMPI does not
        // accelerate host-resident datatypes.
        self.host_xfer(ctx, dir, &plan, strided, count, dt, packed, *position)?;
        *position += bytes;
        Ok(())
    }

    /// Kernel pack/unpack when the contiguous side lives in plain host
    /// memory: run the kernel against a pooled device buffer and bridge
    /// with a single engine copy (reversed for unpack).
    #[allow(clippy::too_many_arguments)]
    fn staged_host_xfer(
        &mut self,
        ctx: &mut RankCtx,
        dir: PackDir,
        plan: &TypePlan,
        strided: GpuPtr,
        count: usize,
        dt: Datatype,
        packed: GpuPtr,
        packed_off: usize,
        bytes: usize,
    ) -> MpiResult<()> {
        let (tmp, sz) = self.pool.take(ctx, MemSpace::Device, bytes)?;
        let r = self.staged_host_xfer_body(
            ctx, dir, plan, strided, count, dt, packed, packed_off, bytes, tmp,
        );
        self.pool.put(tmp, sz);
        r
    }

    #[allow(clippy::too_many_arguments)]
    fn staged_host_xfer_body(
        &mut self,
        ctx: &mut RankCtx,
        dir: PackDir,
        plan: &TypePlan,
        strided: GpuPtr,
        count: usize,
        dt: Datatype,
        packed: GpuPtr,
        packed_off: usize,
        bytes: usize,
        tmp: GpuPtr,
    ) -> MpiResult<()> {
        match dir {
            PackDir::Pack => {
                self.gpu_xfer(ctx, dir, plan, strided, count, dt, tmp, 0)?;
                ctx.stream
                    .memcpy_async(&mut ctx.clock, packed.add(packed_off), tmp, bytes)
                    .map_err(MpiError::Gpu)?;
                ctx.stream.synchronize(&mut ctx.clock);
            }
            PackDir::Unpack => {
                ctx.stream
                    .memcpy_async(&mut ctx.clock, tmp, packed.add(packed_off), bytes)
                    .map_err(MpiError::Gpu)?;
                ctx.stream.synchronize(&mut ctx.clock);
                self.gpu_xfer(ctx, dir, plan, strided, count, dt, tmp, 0)?;
            }
        }
        Ok(())
    }

    /// Kernel-path pack/unpack between device-accessible buffers.
    #[allow(clippy::too_many_arguments)]
    fn gpu_xfer(
        &mut self,
        ctx: &mut RankCtx,
        dir: PackDir,
        plan: &TypePlan,
        strided: GpuPtr,
        count: usize,
        dt: Datatype,
        packed: GpuPtr,
        packed_off: usize,
    ) -> MpiResult<()> {
        match &plan.kind {
            PlanKind::Empty => Ok(()),
            PlanKind::Strided(kp) => {
                // A contiguous object: "issue a single cudaMemcpyAsync …
                // followed by a cudaStreamSynchronize" (§3.3). Multiple
                // items with padding become a dynamic 2-D strided object.
                if kp.kind == KernelKind::Memcpy1D {
                    if count <= 1 || plan.size as i64 == plan.extent {
                        let total = plan.size as usize * count;
                        let s = strided.offset_by(kp.sb.start).ok_or_else(|| {
                            MpiError::InvalidArg("type reaches before buffer".to_string())
                        })?;
                        let p = packed.add(packed_off);
                        let (dst, src) = match dir {
                            PackDir::Pack => (p, s),
                            PackDir::Unpack => (s, p),
                        };
                        ctx.stream
                            .memcpy_async(&mut ctx.clock, dst, src, total)
                            .map_err(MpiError::Gpu)?;
                        ctx.stream.synchronize(&mut ctx.clock);
                        return Ok(());
                    }
                    // incount acts as an extra stride dimension, handled
                    // dynamically (§3.3): view as 2-D and launch once. The
                    // derived plan allocates stride vectors, so it is
                    // cached per (type, count) and steady-state sends
                    // rebuild nothing.
                    if self.reshape_cache.contains_key(&(dt, count)) {
                        self.stats.launch_cache_hits += 1;
                    } else {
                        let sb2 = crate::ir::strided_block::StridedBlock {
                            start: kp.sb.start,
                            counts: vec![plan.size as i64, count as i64],
                            strides: vec![1, plan.extent],
                        };
                        self.reshape_cache
                            .insert((dt, count), select_kernel(sb2, self.config.force_word));
                    }
                    execute_strided(
                        &self.reshape_cache[&(dt, count)],
                        &mut ctx.stream,
                        &mut ctx.clock,
                        dir,
                        strided,
                        plan.extent,
                        1,
                        packed,
                        packed_off,
                    )?;
                    return Ok(());
                }
                if self.config.use_dma && kp.kind == KernelKind::Pack2D {
                    execute_dma_2d(
                        kp,
                        &mut ctx.stream,
                        &mut ctx.clock,
                        dir,
                        strided,
                        plan.extent,
                        count,
                        packed,
                        packed_off,
                    )?;
                    return Ok(());
                }
                if self.config.use_dma
                    && kp.kind == KernelKind::Pack3D
                    && kp.sb.strides[2] >= kp.sb.strides[1] * kp.sb.counts[1]
                {
                    crate::kernels::execute_dma_3d(
                        kp,
                        &mut ctx.stream,
                        &mut ctx.clock,
                        dir,
                        strided,
                        plan.extent,
                        count,
                        packed,
                        packed_off,
                    )?;
                    return Ok(());
                }
                // Steady-state fast path: the launch geometry for this
                // (type, count) pair is cached after the first send.
                let cfg = match self.launch_cache.get(&(dt, count)).copied() {
                    Some(c) => {
                        self.stats.launch_cache_hits += 1;
                        c
                    }
                    None => {
                        let c = kp.launch_config(count);
                        self.launch_cache.insert((dt, count), c);
                        c
                    }
                };
                execute_strided_with(
                    kp,
                    Some(cfg),
                    &mut ctx.stream,
                    &mut ctx.clock,
                    dir,
                    strided,
                    plan.extent,
                    count,
                    packed,
                    packed_off,
                )?;
                Ok(())
            }
            PlanKind::Blocks(bl) => {
                execute_blocklist(
                    bl,
                    &mut ctx.stream,
                    &mut ctx.clock,
                    dir,
                    strided,
                    plan.extent,
                    count,
                    packed,
                    packed_off,
                )?;
                Ok(())
            }
            PlanKind::Fallback(_) => {
                // Fall through to the system MPI's copy-per-block handling.
                // The registry lock is scoped so the vendor pricing below
                // borrows ctx fields disjointly — no Arc or profile clones
                // on this path.
                self.stats.fallbacks += 1;
                let (segs, root_is_vector) = {
                    let reg = ctx.registry().read();
                    (
                        segments(&reg, dt)?,
                        matches!(reg.get_envelope(dt)?.combiner, Combiner::Vector),
                    )
                };
                let mut pos = packed_off;
                match dir {
                    PackDir::Pack => {
                        mpi_sim::vendor::baseline_gpu_pack(
                            &ctx.vendor,
                            &mut ctx.stream,
                            &mut ctx.clock,
                            &segs,
                            plan.extent,
                            root_is_vector,
                            strided,
                            count,
                            packed,
                            &mut pos,
                        )?;
                    }
                    PackDir::Unpack => {
                        mpi_sim::vendor::baseline_gpu_unpack(
                            &ctx.vendor,
                            &mut ctx.stream,
                            &mut ctx.clock,
                            &segs,
                            plan.extent,
                            root_is_vector,
                            packed,
                            &mut pos,
                            strided,
                            count,
                        )?;
                    }
                }
                Ok(())
            }
        }
    }

    /// CPU pack/unpack for host-resident strided data. Functional movement
    /// via the plan's block layout, priced like the system MPI's host path.
    #[allow(clippy::too_many_arguments)]
    fn host_xfer(
        &mut self,
        ctx: &mut RankCtx,
        dir: PackDir,
        plan: &TypePlan,
        strided: GpuPtr,
        count: usize,
        dt: Datatype,
        packed: GpuPtr,
        packed_off: usize,
    ) -> MpiResult<()> {
        let bytes = plan.size as usize * count;
        // Collect (offset, len) runs of one item.
        let runs: Vec<(i64, usize)> = match &plan.kind {
            PlanKind::Empty => Vec::new(),
            PlanKind::Strided(kp) => {
                let mut v = Vec::new();
                let len = kp.sb.block_bytes() as usize;
                kp.sb.for_each_block(|off| v.push((off, len)));
                v
            }
            PlanKind::Blocks(bl) => bl.blocks.iter().map(|&(o, l)| (o, l as usize)).collect(),
            PlanKind::Fallback(_) => {
                let reg = ctx.registry().read();
                segments(&reg, dt)?
                    .iter()
                    .map(|s| (s.off, s.len as usize))
                    .collect()
            }
        };
        // The engine copy must not fault on pageable host memory: this is
        // CPU code, so use host-side accessors.
        let mut mem = ctx.gpu.memory();
        let mut pos = packed_off;
        for item in 0..count {
            let base = item as i64 * plan.extent;
            for &(off, len) in &runs {
                let s = strided.offset_by(base + off).ok_or_else(|| {
                    MpiError::InvalidArg("type reaches before buffer".to_string())
                })?;
                let p = packed.add(pos);
                let (dst, src) = match dir {
                    PackDir::Pack => (p, s),
                    PackDir::Unpack => (s, p),
                };
                let data = mem.peek(src, len)?;
                mem.poke(dst, &data)?;
                pos += len;
            }
        }
        drop(mem);
        ctx.clock
            .advance(ctx.vendor.host_pack_time(bytes, runs.len() * count));
        Ok(())
    }

    // ---- datatype-accelerated send/recv (§5) ----------------------------

    /// The Section-5 model for traffic between this rank and `peer`. Built
    /// per send on the hot path, so the cost tables are handed over as
    /// shared `Arc`s — two refcount bumps, no table copies.
    pub fn send_model(&self, ctx: &RankCtx, peer: usize) -> SendModel {
        SendModel {
            gpu: ctx.stream.cost_model_shared(),
            net: Arc::clone(&ctx.net),
            src: ctx.rank,
            dst: peer,
        }
    }

    /// TEMPI's `MPI_Send`. Non-contiguous device data is packed with the
    /// selected kernel into an intermediate buffer and shipped through the
    /// system MPI; the method (device / one-shot / staged / pipelined)
    /// follows the tuner-calibrated model unless forced. Returns which
    /// method was used (`None` = fell through to the system MPI).
    pub fn send(
        &mut self,
        ctx: &mut RankCtx,
        buf: GpuPtr,
        count: usize,
        dt: Datatype,
        dest: usize,
        tag: i32,
    ) -> MpiResult<Option<Method>> {
        if !ctx.tracer.enabled() {
            let r = self.send_inner(ctx, buf, count, dt, dest, tag);
            self.sync_pool_stats();
            return r;
        }
        let tracer = ctx.tracer.clone();
        let pid = ctx.world_rank as u32;
        tracer.begin(pid, LANE_CPU, "tempi", "MPI_Send", ctx.clock.now().as_ps());
        let r = self.send_inner(ctx, buf, count, dt, dest, tag);
        self.sync_pool_stats();
        tracer.end_args(pid, LANE_CPU, ctx.clock.now().as_ps(), || match &r {
            Ok(m) => {
                let name = match m {
                    Some(m) => method_name(*m),
                    None => "SystemMpi",
                };
                vec![
                    ("method", name.into()),
                    ("dest", dest.into()),
                    ("count", count.into()),
                    ("ok", true.into()),
                ]
            }
            Err(_) => vec![("ok", false.into())],
        });
        r
    }

    /// Pick the method for one accelerated send. Forced methods bypass the
    /// tuner; `TunerMode::Off` evaluates the static model per call (the
    /// pre-tuner behavior); `Model`/`Online` go through the bucketed tuner.
    /// Returns the method and, for pipelined, the chunk to use.
    #[allow(clippy::too_many_arguments)]
    fn choose_method(
        &mut self,
        ctx: &RankCtx,
        plan: &TypePlan,
        dt: Datatype,
        bytes: usize,
        count: usize,
        dest: usize,
        now: SimTime,
    ) -> (Method, Option<usize>) {
        if let Some(forced) = self.config.force_method {
            return (forced, self.config.pipeline_chunk);
        }
        let model = self.send_model(ctx, dest);
        if self.tuner.mode() == TunerMode::Off {
            return (
                model.choose(bytes, plan.block_bytes(), plan.word()),
                self.config.pipeline_chunk,
            );
        }
        let shape = match &plan.kind {
            PlanKind::Strided(kp) if kp.kind == KernelKind::Memcpy1D => 0,
            PlanKind::Strided(_) => 1,
            PlanKind::Blocks(_) => 2,
            _ => 3,
        };
        let intra = ctx.net.same_node(ctx.rank, dest);
        let key = BucketKey::new(shape, plan.block_bytes(), bytes, intra);
        let wl = Workload {
            bytes,
            block: plan.block_bytes(),
            word: plan.word(),
        };
        // Candidate set: ladder rungs minus quarantined ones; in Online
        // mode, pipelined joins whenever the plan can be chunked at all
        // (the tuner's own chunk argmin rejects one-chunk payloads).
        let mut allowed: Vec<Method> = [Method::Device, Method::OneShot, Method::Staged]
            .into_iter()
            .filter(|&m| !self.is_quarantined(dt, m, now))
            .collect();
        let chunkable = matches!(&plan.kind, PlanKind::Strided(kp)
            if kp.kind != KernelKind::Memcpy1D && kp.sb.block_bytes() > 0 && count > 0);
        if self.tuner.mode() == TunerMode::Online
            && chunkable
            && bytes > CHUNK_CANDIDATES[0]
            && !self.is_quarantined(dt, Method::Pipelined, now)
        {
            allowed.push(Method::Pipelined);
        }
        if allowed.is_empty() {
            // Every rung quarantined: hand the ladder its usual starting
            // point and let it fall through to the system MPI.
            return (Method::Device, None);
        }
        let d = self.tuner.choose(key, wl, &model, &allowed, now);
        self.stats.tuner_probes += d.probe as u64;
        self.stats.tuner_bucket_hits += d.bucket_hit as u64;
        self.stats.tuner_method_switches += d.switched as u64;
        ctx.tracer.debug_instant(
            ctx.world_rank as u32,
            LANE_CPU,
            "tempi",
            "tuner.decide",
            now.as_ps(),
            || {
                vec![
                    ("method", method_name(d.method).into()),
                    ("origin", d.origin().into()),
                    ("bytes", bytes.into()),
                    ("chunk", d.chunk.unwrap_or(0).into()),
                ]
            },
        );
        (d.method, d.chunk.or(self.config.pipeline_chunk))
    }

    fn send_inner(
        &mut self,
        ctx: &mut RankCtx,
        buf: GpuPtr,
        count: usize,
        dt: Datatype,
        dest: usize,
        tag: i32,
    ) -> MpiResult<Option<Method>> {
        ctx.clock.advance(TEMPI_DISPATCH_OVERHEAD);
        let plan = self.plan_or_commit(ctx, dt)?;
        let bytes = plan.size as usize * count;
        ctx.tracer.observe("tempi.send.bytes", bytes as u64);
        let accel = buf.space == MemSpace::Device
            && bytes > 0
            && matches!(plan.kind, PlanKind::Strided(_) | PlanKind::Blocks(_))
            && !(plan.is_contiguous() && (count <= 1 || plan.size as i64 == plan.extent));
        if !accel {
            self.stats.fallbacks += 1;
            ctx.send(buf, count, dt, dest, tag)?;
            return Ok(None);
        }
        let now = ctx.clock.now();
        let (mut method, mut chunk) = self.choose_method(ctx, &plan, dt, bytes, count, dest, now);
        // the pipelined method needs a strided plan with more than one
        // chunk of blocks; otherwise it degenerates to plain staged
        if method == Method::Pipelined || self.config.force_method.is_none() {
            let viable = match (&plan.kind, chunk) {
                (PlanKind::Strided(kp), Some(c)) => {
                    let block_len = kp.sb.block_bytes().max(1) as usize;
                    kp.sb.block_count() * count as i64 > (c / block_len).max(1) as i64
                }
                _ => false,
            };
            if method == Method::Pipelined && !viable {
                method = Method::Staged;
            } else if self.config.force_method.is_none()
                && method != Method::Pipelined
                && self.tuner.mode() != TunerMode::Online
                && viable
            {
                // Legacy upgrade check against the configured chunk; the
                // Online tuner already weighed pipelined itself.
                let c = chunk.ok_or_else(|| {
                    MpiError::Internal("pipeline viability computed without a chunk size".into())
                })?;
                let m = self.send_model(ctx, dest);
                let current = match method {
                    Method::Device => m.t_device(bytes, plan.block_bytes(), plan.word()).total(),
                    _ => m.t_oneshot(bytes, plan.block_bytes(), plan.word()).total(),
                };
                if m.t_pipelined(bytes, plan.block_bytes(), plan.word(), c) < current {
                    method = Method::Pipelined;
                }
            }
        }
        if method == Method::Pipelined {
            // Mid-pipeline degradation is unsafe — the receiver has already
            // seen parts and expects the rest — so the pipelined method is
            // not a rung on the ladder; its errors propagate.
            let c = chunk.take().ok_or_else(|| {
                MpiError::InvalidArg("pipelined method requires pipeline_chunk".to_string())
            })?;
            if let Err(e) = self.send_pipelined(ctx, &plan, buf, count, dt, dest, tag, bytes, c) {
                self.note_comm_failure(&e);
                return Err(e);
            }
            return Ok(Some(Method::Pipelined));
        }

        // Degradation ladder (most GPU-dependent first). Start at the
        // chosen method, skip quarantined rungs, and on a transient
        // failure step down; past the last rung, fall through to the
        // system MPI, which needs no TEMPI resources at all.
        let rungs: Vec<Method> = [Method::Device, Method::OneShot, Method::Staged]
            .into_iter()
            .skip_while(|&m| m != method)
            .filter(|&m| !self.is_quarantined(dt, m, now))
            .collect();
        let mut idx = 0usize;
        loop {
            let Some(&current) = rungs.get(idx) else {
                // Ladder exhausted (or every rung quarantined): system MPI.
                self.stats.fallbacks += 1;
                if let Err(e) = ctx.send(buf, count, dt, dest, tag) {
                    self.note_comm_failure(&e);
                    return Err(e);
                }
                return Ok(None);
            };
            match self.send_via(ctx, current, &plan, bytes, buf, count, dt, dest, tag) {
                Ok(()) => return Ok(Some(current)),
                Err(e) if e.is_transient() => {
                    self.quarantine
                        .insert((dt, current), ctx.clock.now() + QUARANTINE_TTL);
                    self.stats.degraded_sends += 1;
                    let to = rungs.get(idx + 1).map_or("SystemMpi", |&m| method_name(m));
                    record_degrade(ctx, dt, method_name(current), to, &e);
                    idx += 1;
                }
                Err(e) => {
                    // A failed peer or a revoked communicator is not a
                    // rung problem — stepping down the ladder cannot help.
                    // Count it and surface it to the recovery path.
                    self.note_comm_failure(&e);
                    return Err(e);
                }
            }
        }
    }

    /// Feed one measured pack/unpack duration to the tuner, paired with
    /// what the §5 model predicted for the same shape. No-op outside
    /// [`TunerMode::Online`]. The measured time is a virtual-clock delta
    /// around the actual kernel path, so model/reality divergences (e.g.
    /// alignment-degraded word sizes) show up as ratios ≠ 1.
    #[allow(clippy::too_many_arguments)]
    fn observe_pack_measurement(
        &mut self,
        ctx: &RankCtx,
        dir: PackDir,
        target: PackTarget,
        bytes: usize,
        block: usize,
        word: usize,
        measured: SimTime,
    ) {
        if self.tuner.mode() != TunerMode::Online {
            return;
        }
        let g = ctx.stream.cost_model();
        let modeled = g.kernel_launch_overhead
            + g.pack_kernel_time(dir, target, bytes, block, word)
            + g.stream_sync_overhead;
        self.tuner.observe_pack(target, modeled, measured);
    }

    /// Feed one measured copy-engine transfer to the tuner (see
    /// [`Tempi::observe_pack_measurement`]).
    fn observe_copy_measurement(
        &mut self,
        ctx: &RankCtx,
        kind: CopyKind,
        bytes: usize,
        measured: SimTime,
    ) {
        if self.tuner.mode() != TunerMode::Online {
            return;
        }
        let g = ctx.stream.cost_model();
        let modeled =
            g.memcpy_async_overhead + g.copy_engine_time(kind, bytes) + g.stream_sync_overhead;
        self.tuner.observe_copy(kind, modeled, measured);
    }

    /// Count an error against the communicator-failure statistic if it is
    /// one (`PeerGone` / `Revoked` / `CommFailed`); transient GPU errors
    /// are handled by the degradation ladder instead.
    fn note_comm_failure(&mut self, e: &MpiError) {
        if e.is_comm_failure() {
            self.stats.comm_failures += 1;
        }
    }

    /// One rung of the send ladder: pack with `method`'s buffer space and
    /// ship. Pool buffers are returned even on failure so a degraded rung
    /// leaks nothing. Per-method stats count successes only.
    #[allow(clippy::too_many_arguments)]
    fn send_via(
        &mut self,
        ctx: &mut RankCtx,
        method: Method,
        plan: &Arc<TypePlan>,
        bytes: usize,
        buf: GpuPtr,
        count: usize,
        dt: Datatype,
        dest: usize,
        tag: i32,
    ) -> MpiResult<()> {
        match method {
            Method::Device | Method::OneShot => {
                let space = if method == Method::Device {
                    MemSpace::Device
                } else {
                    MemSpace::Mapped
                };
                let (tmp, sz) = self.pool.take(ctx, space, bytes)?;
                let r = self.pack_and_ship(ctx, plan, buf, count, dt, tmp, bytes, dest, tag);
                self.pool.put(tmp, sz);
                r?;
                if method == Method::Device {
                    self.stats.device_sends += 1;
                } else {
                    self.stats.oneshot_sends += 1;
                }
            }
            Method::Staged => {
                let (dev, dsz) = self.pool.take(ctx, MemSpace::Device, bytes)?;
                let pin = match self.pool.take(ctx, MemSpace::Pinned, bytes) {
                    Ok(p) => p,
                    Err(e) => {
                        self.pool.put(dev, dsz);
                        return Err(e);
                    }
                };
                let (pin, psz) = pin;
                let r =
                    self.staged_send_body(ctx, plan, buf, count, dt, dev, pin, bytes, dest, tag);
                self.pool.put(dev, dsz);
                self.pool.put(pin, psz);
                r?;
                self.stats.staged_sends += 1;
            }
            Method::Pipelined => {
                return Err(MpiError::Internal(
                    "pipelined is not a ladder rung".to_string(),
                ));
            }
        }
        Ok(())
    }

    /// Pack into `tmp` with the kernel path and send it as raw bytes.
    #[allow(clippy::too_many_arguments)]
    fn pack_and_ship(
        &mut self,
        ctx: &mut RankCtx,
        plan: &Arc<TypePlan>,
        buf: GpuPtr,
        count: usize,
        dt: Datatype,
        tmp: GpuPtr,
        bytes: usize,
        dest: usize,
        tag: i32,
    ) -> MpiResult<()> {
        let pid = ctx.world_rank as u32;
        let t0 = ctx.clock.now();
        self.gpu_xfer(ctx, PackDir::Pack, plan, buf, count, dt, tmp, 0)?;
        let t1 = ctx.clock.now();
        ctx.tracer.complete(
            pid,
            LANE_CPU,
            "tempi",
            "pack",
            t0.as_ps(),
            (t1 - t0).as_ps(),
            || vec![("bytes", bytes.into())],
        );
        let target = if tmp.space == MemSpace::Device {
            PackTarget::Device
        } else {
            PackTarget::MappedHost
        };
        self.observe_pack_measurement(
            ctx,
            PackDir::Pack,
            target,
            bytes,
            plan.block_bytes(),
            plan.word(),
            t1 - t0,
        );
        let t_wire = ctx.clock.now();
        let r = ctx.send_bytes(tmp, bytes, dest, tag);
        ctx.tracer.complete(
            pid,
            LANE_CPU,
            "tempi",
            "wire",
            t_wire.as_ps(),
            (ctx.clock.now() - t_wire).as_ps(),
            || {
                vec![
                    ("bytes", bytes.into()),
                    ("dest", dest.into()),
                    ("ok", r.is_ok().into()),
                ]
            },
        );
        r
    }

    /// Staged rung body: kernel pack into `dev`, engine D2H into `pin`,
    /// then ship the pinned buffer.
    #[allow(clippy::too_many_arguments)]
    fn staged_send_body(
        &mut self,
        ctx: &mut RankCtx,
        plan: &Arc<TypePlan>,
        buf: GpuPtr,
        count: usize,
        dt: Datatype,
        dev: GpuPtr,
        pin: GpuPtr,
        bytes: usize,
        dest: usize,
        tag: i32,
    ) -> MpiResult<()> {
        let pid = ctx.world_rank as u32;
        let t0 = ctx.clock.now();
        self.gpu_xfer(ctx, PackDir::Pack, plan, buf, count, dt, dev, 0)?;
        let t1 = ctx.clock.now();
        ctx.tracer.complete(
            pid,
            LANE_CPU,
            "tempi",
            "pack",
            t0.as_ps(),
            (t1 - t0).as_ps(),
            || vec![("bytes", bytes.into())],
        );
        self.observe_pack_measurement(
            ctx,
            PackDir::Pack,
            PackTarget::Device,
            bytes,
            plan.block_bytes(),
            plan.word(),
            t1 - t0,
        );
        ctx.stream
            .memcpy_async(&mut ctx.clock, pin, dev, bytes)
            .map_err(MpiError::Gpu)?;
        ctx.stream.synchronize(&mut ctx.clock);
        let t2 = ctx.clock.now();
        ctx.tracer.complete(
            pid,
            LANE_CPU,
            "tempi",
            "copy",
            t1.as_ps(),
            (t2 - t1).as_ps(),
            || vec![("bytes", bytes.into()), ("kind", "D2H".into())],
        );
        self.observe_copy_measurement(ctx, CopyKind::D2H, bytes, t2 - t1);
        let t_wire = ctx.clock.now();
        let r = ctx.send_bytes(pin, bytes, dest, tag);
        ctx.tracer.complete(
            pid,
            LANE_CPU,
            "tempi",
            "wire",
            t_wire.as_ps(),
            (ctx.clock.now() - t_wire).as_ps(),
            || {
                vec![
                    ("bytes", bytes.into()),
                    ("dest", dest.into()),
                    ("ok", r.is_ok().into()),
                ]
            },
        );
        r
    }

    /// §8 extension: chunked staged pipeline. Each chunk is packed by an
    /// async kernel into a device staging buffer, copied D2H by the engine,
    /// and its message departs when that copy completes on the GPU timeline
    /// — so kernel k+1 and copy k+1 overlap chunk k's wire time.
    #[allow(clippy::too_many_arguments)]
    fn send_pipelined(
        &mut self,
        ctx: &mut RankCtx,
        plan: &Arc<TypePlan>,
        buf: GpuPtr,
        count: usize,
        _dt: Datatype,
        dest: usize,
        tag: i32,
        bytes: usize,
        chunk: usize,
    ) -> MpiResult<()> {
        let PlanKind::Strided(kp) = &plan.kind else {
            return Err(MpiError::Internal(
                "pipelined send needs a strided plan".to_string(),
            ));
        };
        let block_len = kp.sb.block_bytes() as usize;
        let total_blocks = kp.sb.block_count() * count as i64;
        let blocks_per_chunk = (chunk / block_len).max(1) as i64;
        let nparts = (total_blocks + blocks_per_chunk - 1) / blocks_per_chunk;
        let (dev, dsz) = self.pool.take(ctx, MemSpace::Device, bytes)?;
        let pin = match self.pool.take(ctx, MemSpace::Pinned, bytes) {
            Ok(p) => p,
            Err(e) => {
                self.pool.put(dev, dsz);
                return Err(e);
            }
        };
        let (pin, psz) = pin;
        let extent = plan.extent;
        // The chunk loop touches only `ctx`, so an immediately-invoked
        // closure scopes its `?`s and lets the pool buffers be returned on
        // every path.
        let r = (|| -> MpiResult<()> {
            let mut first = 0i64;
            let mut off = 0usize;
            let mut index = 0u32;
            while first < total_blocks {
                let n = blocks_per_chunk.min(total_blocks - first);
                let len = n as usize * block_len;
                crate::kernels::execute_strided_range_async(
                    kp,
                    &mut ctx.stream,
                    &mut ctx.clock,
                    PackDir::Pack,
                    buf,
                    extent,
                    dev,
                    off,
                    first,
                    n,
                )?;
                // D2H of this chunk queues after its pack kernel
                ctx.stream
                    .memcpy_async(&mut ctx.clock, pin.add(off), dev.add(off), len)
                    .map_err(MpiError::Gpu)?;
                let ready = ctx.stream.busy_until();
                ctx.send_bytes_part(
                    pin.add(off),
                    len,
                    dest,
                    tag,
                    ready,
                    mpi_sim::PartInfo {
                        index,
                        total: nparts as u32,
                    },
                )?;
                first += n;
                off += len;
                index += 1;
            }
            Ok(())
        })();
        self.pool.put(dev, dsz);
        self.pool.put(pin, psz);
        r?;
        self.stats.pipelined_sends += 1;
        Ok(())
    }

    /// TEMPI's `MPI_Recv`. Probes the matched message to learn the
    /// sender's buffer space, receives into the matching intermediate
    /// buffer, and unpacks with the selected kernel.
    pub fn recv(
        &mut self,
        ctx: &mut RankCtx,
        buf: GpuPtr,
        count: usize,
        dt: Datatype,
        src: Option<usize>,
        tag: Option<i32>,
    ) -> MpiResult<(Status, Option<Method>)> {
        if !ctx.tracer.enabled() {
            let r = self.recv_inner(ctx, buf, count, dt, src, tag);
            self.sync_pool_stats();
            return r;
        }
        let tracer = ctx.tracer.clone();
        let pid = ctx.world_rank as u32;
        tracer.begin(pid, LANE_CPU, "tempi", "MPI_Recv", ctx.clock.now().as_ps());
        let r = self.recv_inner(ctx, buf, count, dt, src, tag);
        self.sync_pool_stats();
        tracer.end_args(pid, LANE_CPU, ctx.clock.now().as_ps(), || match &r {
            Ok((st, m)) => {
                let name = match m {
                    Some(m) => method_name(*m),
                    None => "SystemMpi",
                };
                vec![
                    ("method", name.into()),
                    ("source", st.source.into()),
                    ("bytes", st.bytes.into()),
                    ("ok", true.into()),
                ]
            }
            Err(_) => vec![("ok", false.into())],
        });
        r
    }

    fn recv_inner(
        &mut self,
        ctx: &mut RankCtx,
        buf: GpuPtr,
        count: usize,
        dt: Datatype,
        src: Option<usize>,
        tag: Option<i32>,
    ) -> MpiResult<(Status, Option<Method>)> {
        ctx.clock.advance(TEMPI_DISPATCH_OVERHEAD);
        let plan = self.plan_or_commit(ctx, dt)?;
        let capacity = plan.size as usize * count;
        let accel = buf.space == MemSpace::Device
            && capacity > 0
            && matches!(plan.kind, PlanKind::Strided(_) | PlanKind::Blocks(_))
            && !(plan.is_contiguous() && (count <= 1 || plan.size as i64 == plan.extent));
        if !accel {
            self.stats.fallbacks += 1;
            let st = match ctx.recv(buf, count, dt, src, tag) {
                Ok(st) => st,
                Err(e) => {
                    self.note_comm_failure(&e);
                    return Err(e);
                }
            };
            return Ok((st, None));
        }
        let info = match ctx.probe(src, tag) {
            Ok(info) => info,
            Err(e) => {
                self.note_comm_failure(&e);
                return Err(e);
            }
        };
        if let Some(part) = info.part {
            let st = self.recv_pipelined(ctx, buf, count, dt, &plan, info, part)?;
            return Ok((st, Some(Method::Pipelined)));
        }
        if info.bytes > capacity {
            return Err(MpiError::Truncated {
                sent: info.bytes,
                capacity,
                envelope: ctx.registry().read().get_envelope(dt).ok(),
            });
        }
        let items = if plan.size == 0 {
            0
        } else {
            info.bytes / plan.size as usize
        };
        // Sender's buffer space selects the matching unpack method.
        let (space, method) = match info.sender_space {
            MemSpace::Device => (MemSpace::Device, Method::Device),
            MemSpace::Pinned => (MemSpace::Pinned, Method::Staged),
            _ => (MemSpace::Mapped, Method::OneShot),
        };
        ctx.tracer.observe("tempi.recv.bytes", info.bytes as u64);
        let pid = ctx.world_rank as u32;
        let (tmp, sz) = self.pool.take(ctx, space, info.bytes)?;
        let t_wire = ctx.clock.now();
        let st = match ctx.recv_bytes(tmp, info.bytes, Some(info.source), Some(info.tag)) {
            Ok(st) => st,
            Err(e) => {
                self.pool.put(tmp, sz);
                self.note_comm_failure(&e);
                return Err(e);
            }
        };
        ctx.tracer.complete(
            pid,
            LANE_CPU,
            "tempi",
            "wire",
            t_wire.as_ps(),
            (ctx.clock.now() - t_wire).as_ps(),
            || vec![("bytes", info.bytes.into()), ("source", info.source.into())],
        );
        // Wire time is only visible on the receiving clock (senders pay
        // just the send overhead), so the wire ratio is calibrated here:
        // measured wait-plus-transfer against the modeled transfer for the
        // transport this payload actually used.
        if self.tuner.mode() == TunerMode::Online {
            let transport = if space == MemSpace::Device {
                Transport::Gpu
            } else {
                Transport::Cpu
            };
            let intra = ctx.net.same_node(ctx.rank, info.source);
            let model = self.send_model(ctx, info.source);
            let modeled = match transport {
                Transport::Gpu => model.t_gpu_gpu(info.bytes),
                Transport::Cpu => model.t_cpu_cpu(info.bytes),
            };
            self.tuner
                .observe_wire(transport, intra, modeled, ctx.clock.now() - t_wire);
        }
        // Unpack ladder: a quarantined (or transiently failing) kernel path
        // degrades to the CPU copy path, which reads the staging buffer
        // with host-side accessors and touches no further GPU resources.
        let t_unpack = ctx.clock.now();
        let r = if self.pack_quarantine.contains(&dt) {
            self.host_xfer(ctx, PackDir::Unpack, &plan, buf, items, dt, tmp, 0)
        } else {
            match self.unpack_payload(ctx, method, &plan, buf, items, dt, tmp, info.bytes) {
                Ok(()) => Ok(()),
                Err(e) if e.is_transient() => {
                    self.pack_quarantine.insert(dt);
                    self.stats.degraded_xfers += 1;
                    record_degrade(ctx, dt, method_name(method), "HostCopy", &e);
                    self.host_xfer(ctx, PackDir::Unpack, &plan, buf, items, dt, tmp, 0)
                }
                Err(e) => Err(e),
            }
        };
        ctx.tracer.complete(
            pid,
            LANE_CPU,
            "tempi",
            "unpack",
            t_unpack.as_ps(),
            (ctx.clock.now() - t_unpack).as_ps(),
            || {
                vec![
                    ("bytes", info.bytes.into()),
                    ("method", method_name(method).into()),
                    ("ok", r.is_ok().into()),
                ]
            },
        );
        self.pool.put(tmp, sz);
        r?;
        Ok((st, Some(method)))
    }

    /// Kernel-path unpack of a received payload, chosen by the sender's
    /// buffer space. Pool buffers are returned even on failure.
    #[allow(clippy::too_many_arguments)]
    fn unpack_payload(
        &mut self,
        ctx: &mut RankCtx,
        method: Method,
        plan: &Arc<TypePlan>,
        buf: GpuPtr,
        items: usize,
        dt: Datatype,
        tmp: GpuPtr,
        bytes: usize,
    ) -> MpiResult<()> {
        match method {
            Method::Device | Method::OneShot => {
                self.gpu_xfer(ctx, PackDir::Unpack, plan, buf, items, dt, tmp, 0)
            }
            Method::Staged | Method::Pipelined => {
                // non-part-tagged pinned payload: plain staged unpack
                // (a true pipelined transfer is handled by recv_pipelined)
                let (dev, dsz) = self.pool.take(ctx, MemSpace::Device, bytes)?;
                let r = self.staged_unpack_body(ctx, plan, buf, items, dt, tmp, dev, bytes);
                self.pool.put(dev, dsz);
                r
            }
        }
    }

    /// Staged unpack body: engine H2D into `dev`, then kernel unpack.
    #[allow(clippy::too_many_arguments)]
    fn staged_unpack_body(
        &mut self,
        ctx: &mut RankCtx,
        plan: &Arc<TypePlan>,
        buf: GpuPtr,
        items: usize,
        dt: Datatype,
        tmp: GpuPtr,
        dev: GpuPtr,
        bytes: usize,
    ) -> MpiResult<()> {
        let t0 = ctx.clock.now();
        ctx.stream
            .memcpy_async(&mut ctx.clock, dev, tmp, bytes)
            .map_err(MpiError::Gpu)?;
        ctx.stream.synchronize(&mut ctx.clock);
        ctx.tracer.complete(
            ctx.world_rank as u32,
            LANE_CPU,
            "tempi",
            "copy",
            t0.as_ps(),
            (ctx.clock.now() - t0).as_ps(),
            || vec![("bytes", bytes.into()), ("kind", "H2D".into())],
        );
        self.observe_copy_measurement(ctx, CopyKind::H2D, bytes, ctx.clock.now() - t0);
        let t1 = ctx.clock.now();
        self.gpu_xfer(ctx, PackDir::Unpack, plan, buf, items, dt, dev, 0)?;
        self.observe_pack_measurement(
            ctx,
            PackDir::Unpack,
            PackTarget::Device,
            bytes,
            plan.block_bytes(),
            plan.word(),
            ctx.clock.now() - t1,
        );
        Ok(())
    }

    /// Consume a pipelined multi-part transfer: receive each chunk into a
    /// staging device buffer and launch its unpack kernel asynchronously,
    /// overlapping wire time of chunk k+1 with unpack of chunk k; join at
    /// the end.
    #[allow(clippy::too_many_arguments)] // MPI-shaped plus plan/part context
    fn recv_pipelined(
        &mut self,
        ctx: &mut RankCtx,
        buf: GpuPtr,
        count: usize,
        dt: Datatype,
        plan: &TypePlan,
        info: mpi_sim::ProbeInfo,
        part: mpi_sim::PartInfo,
    ) -> MpiResult<Status> {
        let capacity = plan.size as usize * count;
        let (pin, psz) = self.pool.take(ctx, MemSpace::Pinned, capacity)?;
        let tmp = match self.pool.take(ctx, MemSpace::Device, capacity) {
            Ok(t) => t,
            Err(e) => {
                self.pool.put(pin, psz);
                return Err(e);
            }
        };
        let (tmp, sz) = tmp;
        let r = self.recv_pipelined_body(ctx, buf, dt, plan, &info, &part, pin, tmp, capacity);
        self.pool.put(tmp, sz);
        self.pool.put(pin, psz);
        let st = r?;
        self.stats.pipelined_recvs += 1;
        Ok(st)
    }

    /// The chunk loop of [`Tempi::recv_pipelined`], split out so the pool
    /// buffers can be returned on every exit path.
    #[allow(clippy::too_many_arguments)]
    fn recv_pipelined_body(
        &mut self,
        ctx: &mut RankCtx,
        buf: GpuPtr,
        dt: Datatype,
        plan: &TypePlan,
        info: &mpi_sim::ProbeInfo,
        part: &mpi_sim::PartInfo,
        pin: GpuPtr,
        tmp: GpuPtr,
        capacity: usize,
    ) -> MpiResult<Status> {
        let mut received = 0usize;
        let mut per_chunk_unpack: Option<(&KernelPlan, i64)> = match &plan.kind {
            PlanKind::Strided(kp) if kp.sb.block_bytes() > 0 => Some((kp, kp.sb.block_bytes())),
            _ => None,
        };
        let mut last = Status {
            source: info.source,
            tag: info.tag,
            bytes: 0,
        };
        for _ in 0..part.total {
            // CPU-path receive into pinned staging, then async H2D and
            // async unpack of this chunk
            let st = ctx.recv_bytes(
                pin.add(received),
                capacity - received,
                Some(info.source),
                Some(info.tag),
            )?;
            ctx.stream
                .memcpy_async(
                    &mut ctx.clock,
                    tmp.add(received),
                    pin.add(received),
                    st.bytes,
                )
                .map_err(MpiError::Gpu)?;
            // chunk boundaries must land on this rank's block boundaries
            // for incremental unpack; otherwise defer to one final unpack
            if let Some((kp, block_len)) = &per_chunk_unpack {
                if st.bytes % *block_len as usize == 0 {
                    let first = (received / *block_len as usize) as i64;
                    let n = (st.bytes / *block_len as usize) as i64;
                    crate::kernels::execute_strided_range_async(
                        kp,
                        &mut ctx.stream,
                        &mut ctx.clock,
                        PackDir::Unpack,
                        buf,
                        plan.extent,
                        tmp,
                        received,
                        first,
                        n,
                    )?;
                } else {
                    per_chunk_unpack = None;
                }
            }
            received += st.bytes;
            last = st;
        }
        if received > capacity {
            return Err(MpiError::Truncated {
                sent: received,
                capacity,
                envelope: ctx.registry().read().get_envelope(dt).ok(),
            });
        }
        if per_chunk_unpack.is_some() {
            ctx.stream.synchronize(&mut ctx.clock);
        } else {
            // mismatched boundaries: single unpack of the whole payload
            let items = if plan.size == 0 {
                0
            } else {
                received / plan.size as usize
            };
            self.gpu_xfer(ctx, PackDir::Unpack, plan, buf, items, dt, tmp, 0)?;
        }
        Ok(Status {
            source: last.source,
            tag: last.tag,
            bytes: received,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpi_sim::consts::*;
    use mpi_sim::datatype::pack_cpu;
    use mpi_sim::datatype::Order;
    use mpi_sim::{World, WorldConfig};

    fn ctx() -> RankCtx {
        RankCtx::standalone(&WorldConfig::summit(1))
    }

    fn fill(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i % 251) as u8).collect()
    }

    #[test]
    fn commit_builds_strided_plan_for_vector() {
        let mut ctx = ctx();
        let mut tempi = Tempi::default();
        let dt = ctx.type_vector(13, 100, 128, MPI_FLOAT).unwrap();
        let plan = tempi.type_commit(&mut ctx, dt).unwrap();
        match &plan.kind {
            PlanKind::Strided(kp) => {
                assert_eq!(kp.sb.counts, vec![400, 13]);
                assert_eq!(kp.sb.strides, vec![1, 512]);
                assert_eq!(kp.kind, KernelKind::Pack2D);
                assert_eq!(kp.word, 16); // 400 and 512 both divisible by 16
            }
            other => panic!("expected strided, got {other:?}"),
        }
        assert_eq!(plan.size, 5200);
        assert!(plan.report.introspection_calls > 0);
        assert!(plan.report.commit_time > SimTime::ZERO);
        assert_eq!(tempi.stats.commits, 1);
    }

    #[test]
    fn commit_is_cached() {
        let mut ctx = ctx();
        let mut tempi = Tempi::default();
        let dt = ctx.type_contiguous(64, MPI_INT).unwrap();
        let a = tempi.type_commit(&mut ctx, dt).unwrap();
        let t = ctx.clock.now();
        let b = tempi.type_commit(&mut ctx, dt).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(ctx.clock.now(), t, "cached commit must be free");
        assert_eq!(tempi.stats.commit_cache_hits, 1);
    }

    #[test]
    fn equivalent_constructions_get_identical_kernel_plans() {
        // the heart of the paper: vector / hvector / subarray descriptions
        // of the same 2-D object must canonicalize to the same plan
        let mut ctx = ctx();
        let mut tempi = Tempi::default();
        let v = ctx.type_vector(13, 100, 256, MPI_BYTE).unwrap();
        let row = ctx.type_contiguous(100, MPI_BYTE).unwrap();
        let h = ctx.type_create_hvector(13, 1, 256, row).unwrap();
        let s = ctx
            .type_create_subarray(&[13, 256], &[13, 100], &[0, 0], Order::C, MPI_BYTE)
            .unwrap();
        let pv = tempi.type_commit(&mut ctx, v).unwrap();
        let ph = tempi.type_commit(&mut ctx, h).unwrap();
        let ps = tempi.type_commit(&mut ctx, s).unwrap();
        let kv = match &pv.kind {
            PlanKind::Strided(k) => k,
            _ => panic!(),
        };
        let kh = match &ph.kind {
            PlanKind::Strided(k) => k,
            _ => panic!(),
        };
        let ks = match &ps.kind {
            PlanKind::Strided(k) => k,
            _ => panic!(),
        };
        assert_eq!(kv, kh);
        assert_eq!(kh, ks);
    }

    #[test]
    fn canonicalization_off_breaks_plan_parity() {
        let mut ctx = ctx();
        let mut tempi = Tempi::new(TempiConfig {
            canonicalize: false,
            ..TempiConfig::default()
        });
        let v = ctx.type_vector(13, 100, 256, MPI_BYTE).unwrap();
        let row = ctx.type_contiguous(100, MPI_BYTE).unwrap();
        let h = ctx.type_create_hvector(13, 1, 256, row).unwrap();
        let pv = tempi.type_commit(&mut ctx, v).unwrap();
        let ph = tempi.type_commit(&mut ctx, h).unwrap();
        assert_ne!(pv.kind, ph.kind, "without canonicalization, plans differ");
    }

    #[test]
    fn pack_matches_cpu_reference_for_subarray() {
        let mut ctx = ctx();
        let mut tempi = Tempi::default();
        let dt = ctx
            .type_create_subarray(&[32, 64], &[5, 24], &[3, 8], Order::C, MPI_BYTE)
            .unwrap();
        tempi.type_commit(&mut ctx, dt).unwrap();
        let n = 32 * 64;
        let data = fill(n);
        let src = ctx.gpu.malloc(n).unwrap();
        ctx.gpu.memory().poke(src, &data).unwrap();
        let dst = ctx.gpu.malloc(5 * 24).unwrap();
        let mut pos = 0;
        tempi
            .pack(&mut ctx, src, 1, dt, dst, 5 * 24, &mut pos)
            .unwrap();
        assert_eq!(pos, 120);
        let got = ctx.gpu.memory().peek(dst, 120).unwrap();

        // CPU oracle
        let reg = ctx.registry().read();
        let mut want = vec![0u8; 120];
        let mut p = 0;
        pack_cpu::pack(&reg, &data, 0, 1, dt, &mut want, &mut p).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn unpack_roundtrips() {
        let mut ctx = ctx();
        let mut tempi = Tempi::default();
        let dt = ctx.type_vector(16, 8, 32, MPI_BYTE).unwrap();
        tempi.type_commit(&mut ctx, dt).unwrap();
        let span = 15 * 32 + 8;
        let data = fill(span);
        let src = ctx.gpu.malloc(span).unwrap();
        ctx.gpu.memory().poke(src, &data).unwrap();
        let mid = ctx.gpu.malloc(128).unwrap();
        let out = ctx.gpu.malloc(span).unwrap();
        let mut pos = 0;
        tempi
            .pack(&mut ctx, src, 1, dt, mid, 128, &mut pos)
            .unwrap();
        let mut pos = 0;
        tempi
            .unpack(&mut ctx, mid, 128, &mut pos, out, 1, dt)
            .unwrap();
        let got = ctx.gpu.memory().peek(out, span).unwrap();
        for b in 0..16 {
            let o = b * 32;
            assert_eq!(&got[o..o + 8], &data[o..o + 8], "block {b}");
        }
        assert_eq!(tempi.stats.pack_calls, 1);
        assert_eq!(tempi.stats.unpack_calls, 1);
    }

    #[test]
    fn pack_of_uncommitted_type_fails() {
        let mut ctx = ctx();
        let mut tempi = Tempi::default();
        let dt = ctx.type_vector(4, 2, 8, MPI_BYTE).unwrap();
        let b = ctx.gpu.malloc(64).unwrap();
        let mut pos = 0;
        assert_eq!(
            tempi.pack(&mut ctx, b, 1, dt, b, 64, &mut pos),
            Err(MpiError::NotCommitted)
        );
    }

    #[test]
    fn pack_detects_small_output() {
        let mut ctx = ctx();
        let mut tempi = Tempi::default();
        let dt = ctx.type_contiguous(64, MPI_BYTE).unwrap();
        tempi.type_commit(&mut ctx, dt).unwrap();
        let src = ctx.gpu.malloc(64).unwrap();
        let dst = ctx.gpu.malloc(32).unwrap();
        let mut pos = 0;
        assert!(matches!(
            tempi.pack(&mut ctx, src, 1, dt, dst, 32, &mut pos),
            Err(MpiError::BufferTooSmall { .. })
        ));
    }

    #[test]
    fn contiguous_pack_is_single_memcpy() {
        let mut ctx = ctx();
        let mut tempi = Tempi::default();
        let dt = ctx.type_contiguous(4096, MPI_BYTE).unwrap();
        tempi.type_commit(&mut ctx, dt).unwrap();
        let src = ctx.gpu.malloc(4096).unwrap();
        let dst = ctx.gpu.malloc(4096).unwrap();
        let mut pos = 0;
        tempi
            .pack(&mut ctx, src, 1, dt, dst, 4096, &mut pos)
            .unwrap();
        assert_eq!(ctx.stream.stats().memcpys, 1);
        assert_eq!(ctx.stream.stats().kernel_launches, 0);
    }

    #[test]
    fn incount_with_padding_uses_dynamic_2d_kernel() {
        let mut ctx = ctx();
        let mut tempi = Tempi::default();
        // contiguous 8 bytes but extent 8 — need padding: use a vector of
        // one block to force extent > size? vector(1,8,1) canonicalizes to
        // dense(8) with type extent 8 == size → single memcpy. Use resized.
        let c = ctx.type_contiguous(8, MPI_BYTE).unwrap();
        let dt = ctx.type_create_resized(c, 0, 16).unwrap(); // extent 16
        tempi.type_commit(&mut ctx, dt).unwrap();
        let src = ctx.gpu.malloc(64).unwrap();
        ctx.gpu.memory().poke(src, &fill(64)).unwrap();
        let dst = ctx.gpu.malloc(32).unwrap();
        let mut pos = 0;
        tempi.pack(&mut ctx, src, 4, dt, dst, 32, &mut pos).unwrap();
        assert_eq!(ctx.stream.stats().kernel_launches, 1);
        let got = ctx.gpu.memory().peek(dst, 32).unwrap();
        let data = fill(64);
        for item in 0..4 {
            assert_eq!(
                &got[item * 8..item * 8 + 8],
                &data[item * 16..item * 16 + 8],
                "item {item}"
            );
        }
    }

    #[test]
    fn hindexed_uses_blocklist_kernel() {
        let mut ctx = ctx();
        let mut tempi = Tempi::default();
        let dt = ctx
            .type_create_hindexed(&[4, 4], &[32, 0], MPI_BYTE)
            .unwrap();
        let plan = tempi.type_commit(&mut ctx, dt).unwrap();
        assert!(matches!(plan.kind, PlanKind::Blocks(_)));
        let src = ctx.gpu.malloc(64).unwrap();
        ctx.gpu.memory().poke(src, &fill(64)).unwrap();
        let dst = ctx.gpu.malloc(8).unwrap();
        let mut pos = 0;
        tempi.pack(&mut ctx, src, 1, dt, dst, 8, &mut pos).unwrap();
        assert_eq!(
            ctx.gpu.memory().peek(dst, 8).unwrap(),
            vec![32, 33, 34, 35, 0, 1, 2, 3]
        );
    }

    #[test]
    fn struct_type_falls_back() {
        let mut ctx = ctx();
        let mut tempi = Tempi::default();
        let dt = ctx
            .type_create_struct(&[2, 1], &[0, 16], &[MPI_INT, MPI_DOUBLE])
            .unwrap();
        let plan = tempi.type_commit(&mut ctx, dt).unwrap();
        assert!(matches!(plan.kind, PlanKind::Fallback(_)));
        let src = ctx.gpu.malloc(32).unwrap();
        ctx.gpu.memory().poke(src, &fill(32)).unwrap();
        let dst = ctx.gpu.malloc(16).unwrap();
        let mut pos = 0;
        tempi.pack(&mut ctx, src, 1, dt, dst, 16, &mut pos).unwrap();
        assert_eq!(tempi.stats.fallbacks, 1);
        let data = fill(32);
        let got = ctx.gpu.memory().peek(dst, 16).unwrap();
        assert_eq!(&got[..8], &data[..8]);
        assert_eq!(&got[8..16], &data[16..24]);
    }

    #[test]
    fn host_buffers_use_cpu_path() {
        let mut ctx = ctx();
        let mut tempi = Tempi::default();
        let dt = ctx.type_vector(4, 4, 8, MPI_BYTE).unwrap();
        tempi.type_commit(&mut ctx, dt).unwrap();
        let src = ctx.gpu.host_alloc(32).unwrap();
        ctx.gpu.memory().poke(src, &fill(32)).unwrap();
        let dst = ctx.gpu.host_alloc(16).unwrap();
        let mut pos = 0;
        tempi.pack(&mut ctx, src, 1, dt, dst, 16, &mut pos).unwrap();
        assert_eq!(ctx.stream.stats().kernel_launches, 0);
        let data = fill(32);
        let got = ctx.gpu.memory().peek(dst, 16).unwrap();
        assert_eq!(&got[..4], &data[..4]);
        assert_eq!(&got[4..8], &data[8..12]);
    }

    #[test]
    fn gpu_to_pageable_host_pack_stages_through_device() {
        let mut ctx = ctx();
        let mut tempi = Tempi::default();
        let dt = ctx.type_vector(4, 4, 8, MPI_BYTE).unwrap();
        tempi.type_commit(&mut ctx, dt).unwrap();
        let src = ctx.gpu.malloc(32).unwrap();
        ctx.gpu.memory().poke(src, &fill(32)).unwrap();
        let dst = ctx.gpu.host_alloc(16).unwrap();
        let mut pos = 0;
        tempi.pack(&mut ctx, src, 1, dt, dst, 16, &mut pos).unwrap();
        // kernel into temp device buffer + one D2H copy
        assert_eq!(ctx.stream.stats().kernel_launches, 1);
        assert_eq!(ctx.stream.stats().memcpys, 1);
        let data = fill(32);
        let got = ctx.gpu.memory().peek(dst, 16).unwrap();
        assert_eq!(&got[..4], &data[..4]);
    }

    #[test]
    fn dma_config_uses_2d_engine() {
        let mut ctx = ctx();
        let mut tempi = Tempi::new(TempiConfig {
            use_dma: true,
            ..TempiConfig::default()
        });
        let dt = ctx.type_vector(8, 16, 32, MPI_BYTE).unwrap();
        tempi.type_commit(&mut ctx, dt).unwrap();
        let src = ctx.gpu.malloc(256).unwrap();
        ctx.gpu.memory().poke(src, &fill(256)).unwrap();
        let dst = ctx.gpu.malloc(128).unwrap();
        let mut pos = 0;
        tempi
            .pack(&mut ctx, src, 1, dt, dst, 128, &mut pos)
            .unwrap();
        assert_eq!(ctx.stream.stats().memcpys_2d, 1);
        assert_eq!(ctx.stream.stats().kernel_launches, 0);
        let data = fill(256);
        let got = ctx.gpu.memory().peek(dst, 128).unwrap();
        assert_eq!(&got[..16], &data[..16]);
        assert_eq!(&got[16..32], &data[32..48]);
    }

    #[test]
    fn send_recv_accelerated_roundtrip_device_and_oneshot() {
        let mut cfg = WorldConfig::summit(2);
        cfg.net.ranks_per_node = 1;
        for force in [
            Some(Method::Device),
            Some(Method::OneShot),
            Some(Method::Staged),
            None,
        ] {
            let results = World::run(&cfg, |ctx| {
                let mut tempi = Tempi::new(TempiConfig {
                    force_method: force,
                    ..TempiConfig::default()
                });
                let dt = ctx.type_vector(32, 16, 64, MPI_BYTE)?;
                tempi.type_commit(ctx, dt)?;
                let span = 31 * 64 + 16;
                let buf = ctx.gpu.malloc(span)?;
                if ctx.rank == 0 {
                    let data: Vec<u8> = (0..span).map(|i| (i % 250) as u8).collect();
                    ctx.gpu.memory().poke(buf, &data)?;
                    let used = tempi.send(ctx, buf, 1, dt, 1, 5)?;
                    assert!(used.is_some());
                    if let Some(f) = force {
                        assert_eq!(used, Some(f));
                    }
                    Ok(vec![])
                } else {
                    let (st, method) = tempi.recv(ctx, buf, 1, dt, Some(0), Some(5))?;
                    assert_eq!(st.bytes, 32 * 16);
                    assert!(method.is_some());
                    if let Some(f) = force {
                        assert_eq!(method, Some(f));
                    }
                    let got = ctx.gpu.memory().peek(buf, span)?;
                    Ok(got)
                }
            })
            .unwrap();
            let got = &results[1];
            for b in 0..32 {
                let o = b * 64;
                let want: Vec<u8> = (o..o + 16).map(|i| (i % 250) as u8).collect();
                assert_eq!(&got[o..o + 16], &want[..], "block {b}, force {force:?}");
            }
        }
    }

    #[test]
    fn send_of_contiguous_type_falls_through() {
        let mut cfg = WorldConfig::summit(2);
        cfg.net.ranks_per_node = 1;
        let results = World::run(&cfg, |ctx| {
            let mut tempi = Tempi::default();
            let dt = ctx.type_contiguous(1024, MPI_BYTE)?;
            tempi.type_commit(ctx, dt)?;
            let buf = ctx.gpu.malloc(1024)?;
            if ctx.rank == 0 {
                let m = tempi.send(ctx, buf, 1, dt, 1, 0)?;
                assert_eq!(m, None);
                Ok(tempi.stats.fallbacks)
            } else {
                let (_, m) = tempi.recv(ctx, buf, 1, dt, Some(0), Some(0))?;
                assert_eq!(m, None);
                Ok(tempi.stats.fallbacks)
            }
        })
        .unwrap();
        assert_eq!(results, vec![1, 1]);
    }

    #[test]
    fn model_choice_differs_by_shape() {
        // large object, tiny blocks → device; small-ish object with big
        // blocks → one-shot (both ranks on different nodes)
        let mut cfg = WorldConfig::summit(2);
        cfg.net.ranks_per_node = 1;
        let results = World::run(&cfg, |ctx| {
            let mut tempi = Tempi::default();
            // 4 MiB, 16-byte blocks
            let small_blocks = ctx.type_vector((4 << 20) / 16, 16, 32, MPI_BYTE)?;
            // 1 MiB, 4096-byte blocks
            let big_blocks = ctx.type_vector(256, 4096, 8192, MPI_BYTE)?;
            let p1 = tempi.type_commit(ctx, small_blocks)?;
            let p2 = tempi.type_commit(ctx, big_blocks)?;
            let m = tempi.send_model(ctx, 1 - ctx.rank);
            let c1 = m.choose(p1.size as usize, p1.block_bytes(), p1.word());
            let c2 = m.choose(p2.size as usize, p2.block_bytes(), p2.word());
            Ok((c1, c2))
        })
        .unwrap();
        assert_eq!(results[0], (Method::Device, Method::OneShot));
    }

    #[test]
    fn buffer_pool_reused_across_sends() {
        let mut cfg = WorldConfig::summit(2);
        cfg.net.ranks_per_node = 1;
        let results = World::run(&cfg, |ctx| {
            let mut tempi = Tempi::default();
            let dt = ctx.type_vector(64, 16, 64, MPI_BYTE)?;
            tempi.type_commit(ctx, dt)?;
            let span = 63 * 64 + 16;
            let buf = ctx.gpu.malloc(span)?;
            for i in 0..5 {
                if ctx.rank == 0 {
                    tempi.send(ctx, buf, 1, dt, 1, i)?;
                } else {
                    tempi.recv(ctx, buf, 1, dt, Some(0), Some(i))?;
                }
            }
            Ok(tempi.pool.fresh_allocs)
        })
        .unwrap();
        // warm-up allocates; steady state reuses
        assert!(results[0] <= 2, "sender allocs {}", results[0]);
        assert!(results[1] <= 2, "receiver allocs {}", results[1]);
    }

    #[test]
    fn pipelined_send_recv_roundtrip_and_wins_at_scale() {
        let mut cfg = WorldConfig::summit(2);
        cfg.net.ranks_per_node = 1;
        let total = 4usize << 20;
        let block = 1024usize;
        let count = total / block;
        let span = count * block * 2;

        let run = |pipeline: Option<usize>| -> (Vec<u8>, u64, SimTime) {
            let results = World::run(&cfg, |ctx| {
                let mut tempi = Tempi::new(TempiConfig {
                    pipeline_chunk: pipeline,
                    force_method: pipeline.map(|_| Method::Pipelined),
                    ..TempiConfig::default()
                });
                let dt =
                    ctx.type_vector(count as i32, block as i32, (block * 2) as i32, MPI_BYTE)?;
                tempi.type_commit(ctx, dt)?;
                let buf = ctx.gpu.malloc(span)?;
                if ctx.rank == 0 {
                    let data: Vec<u8> = (0..span).map(|i| (i % 253) as u8).collect();
                    ctx.gpu.memory().poke(buf, &data)?;
                    // warm-up + measured
                    tempi.send(ctx, buf, 1, dt, 1, 0)?;
                    ctx.barrier();
                    tempi.send(ctx, buf, 1, dt, 1, 1)?;
                    Ok((Vec::new(), tempi.stats.pipelined_sends, 0u64))
                } else {
                    tempi.recv(ctx, buf, 1, dt, Some(0), Some(0))?;
                    ctx.barrier();
                    let t0 = ctx.clock.now();
                    let (st, _) = tempi.recv(ctx, buf, 1, dt, Some(0), Some(1))?;
                    let elapsed = ctx.clock.now() - t0;
                    assert_eq!(st.bytes, total);
                    let got = ctx.gpu.memory().peek(buf, span)?;
                    Ok((got, tempi.stats.pipelined_recvs, elapsed.as_ps()))
                }
            })
            .unwrap();
            let (got, recvs, t) = results[1].clone();
            (got, recvs, SimTime::from_ps(t))
        };

        let (plain_bytes, plain_recvs, t_plain) = run(None);
        let (pipe_bytes, pipe_recvs, t_pipe) = run(Some(256 << 10));
        assert_eq!(plain_recvs, 0);
        assert_eq!(pipe_recvs, 2);
        // identical delivered bytes
        assert_eq!(plain_bytes, pipe_bytes);
        // and on a 4 MiB coarse-grained object the pipeline beats the
        // model-chosen non-pipelined method
        assert!(
            t_pipe < t_plain,
            "pipelined {t_pipe} should beat plain {t_plain}"
        );
    }

    #[test]
    fn pipelined_method_degenerates_to_staged_for_small_objects() {
        let mut cfg = WorldConfig::summit(2);
        cfg.net.ranks_per_node = 1;
        let results = World::run(&cfg, |ctx| {
            let mut tempi = Tempi::new(TempiConfig {
                pipeline_chunk: Some(1 << 20),
                force_method: Some(Method::Pipelined),
                ..TempiConfig::default()
            });
            // one chunk's worth of blocks -> degenerates to staged
            let dt = ctx.type_vector(16, 64, 128, MPI_BYTE)?;
            tempi.type_commit(ctx, dt)?;
            let buf = ctx.gpu.malloc(16 * 128)?;
            if ctx.rank == 0 {
                let m = tempi.send(ctx, buf, 1, dt, 1, 0)?;
                Ok(m)
            } else {
                let (_, m) = tempi.recv(ctx, buf, 1, dt, Some(0), Some(0))?;
                Ok(m)
            }
        })
        .unwrap();
        assert_eq!(results[0], Some(Method::Staged));
        assert_eq!(results[1], Some(Method::Staged));
    }

    #[test]
    fn model_prefers_pipelined_for_large_coarse_objects() {
        let m = crate::model::SendModel::summit_internode();
        let (bytes, block, word, chunk) = (4usize << 20, 4096usize, 8usize, 256usize << 10);
        let pipelined = m.t_pipelined(bytes, block, word, chunk);
        let device = m.t_device(bytes, block, word).total();
        let oneshot = m.t_oneshot(bytes, block, word).total();
        assert!(pipelined < device, "{pipelined} vs device {device}");
        assert!(pipelined < oneshot, "{pipelined} vs oneshot {oneshot}");
    }

    #[test]
    fn struct_extension_builds_blocklist_and_packs() {
        let mut ctx = ctx();
        let mut tempi = Tempi::new(TempiConfig {
            extend_struct: true,
            ..TempiConfig::default()
        });
        let dt = ctx
            .type_create_struct(&[2, 1], &[0, 16], &[MPI_INT, MPI_DOUBLE])
            .unwrap();
        let plan = tempi.type_commit(&mut ctx, dt).unwrap();
        match &plan.kind {
            PlanKind::Blocks(bl) => assert_eq!(bl.blocks, vec![(0, 8), (16, 8)]),
            other => panic!("expected blocks, got {other:?}"),
        }
        let src = ctx.gpu.malloc(32).unwrap();
        ctx.gpu.memory().poke(src, &fill(32)).unwrap();
        let dst = ctx.gpu.malloc(16).unwrap();
        let mut pos = 0;
        tempi.pack(&mut ctx, src, 1, dt, dst, 16, &mut pos).unwrap();
        assert_eq!(tempi.stats.fallbacks, 0, "blocklist kernel, not fallback");
        let data = fill(32);
        let got = ctx.gpu.memory().peek(dst, 16).unwrap();
        assert_eq!(&got[..8], &data[..8]);
        assert_eq!(&got[8..16], &data[16..24]);
    }

    #[test]
    fn struct_of_vectors_extension_flattens_members() {
        let mut ctx = ctx();
        let mut tempi = Tempi::new(TempiConfig {
            extend_struct: true,
            ..TempiConfig::default()
        });
        let v = ctx.type_vector(2, 2, 4, MPI_BYTE).unwrap(); // blocks at 0,4
        let dt = ctx
            .type_create_struct(&[1, 2], &[32, 0], &[MPI_INT, v])
            .unwrap();
        let plan = tempi.type_commit(&mut ctx, dt).unwrap();
        match &plan.kind {
            PlanKind::Blocks(bl) => {
                // int at 32, then two vector elements (extent 6) at 0 and 6
                assert_eq!(bl.blocks, vec![(32, 4), (0, 2), (4, 2), (6, 2), (10, 2)]);
            }
            other => panic!("expected blocks, got {other:?}"),
        }
    }

    #[test]
    fn indexed_block_gets_blocklist_plan() {
        let mut ctx = ctx();
        let mut tempi = Tempi::default();
        let dt = ctx
            .type_create_indexed_block(2, &[8, 0, 4], MPI_INT)
            .unwrap();
        let plan = tempi.type_commit(&mut ctx, dt).unwrap();
        match &plan.kind {
            PlanKind::Blocks(bl) => {
                assert_eq!(bl.blocks, vec![(32, 8), (0, 8), (16, 8)]);
            }
            other => panic!("expected blocks, got {other:?}"),
        }
        assert_eq!(plan.size, 24);
        let src = ctx.gpu.malloc(64).unwrap();
        ctx.gpu.memory().poke(src, &fill(64)).unwrap();
        let dst = ctx.gpu.malloc(24).unwrap();
        let mut pos = 0;
        tempi.pack(&mut ctx, src, 1, dt, dst, 24, &mut pos).unwrap();
        let data = fill(64);
        let got = ctx.gpu.memory().peek(dst, 24).unwrap();
        assert_eq!(&got[..8], &data[32..40]);
        assert_eq!(&got[8..16], &data[..8]);
    }

    #[test]
    fn send_degrades_to_oneshot_on_device_oom() {
        // a device too small for the intermediate buffer: the ladder must
        // step Device -> OneShot (mapped host memory needs no device
        // bytes), log exactly one downgrade, and quarantine Device so the
        // second send goes straight to OneShot without a new event
        let mut cfg = WorldConfig::summit(2);
        cfg.net.ranks_per_node = 1;
        cfg.device.global_mem_bytes = 160 << 10; // 160 KiB device
        let results = World::run(&cfg, |ctx| {
            let mut tempi = Tempi::new(TempiConfig {
                force_method: Some(Method::Device), // needs a device buffer
                ..TempiConfig::default()
            });
            let dt = ctx.type_vector(1024, 64, 128, MPI_BYTE)?; // 64 KiB data
            tempi.type_commit(ctx, dt)?;
            let buf = ctx.gpu.malloc(128 << 10)?; // leaves only 32 KiB free
            if ctx.rank == 0 {
                let m1 = tempi.send(ctx, buf, 1, dt, 1, 0)?;
                let logged = ctx.faults.stats.events.len() == 1
                    && ctx.faults.stats.events[0].from == "Device"
                    && ctx.faults.stats.events[0].to == "OneShot";
                let m2 = tempi.send(ctx, buf, 1, dt, 1, 1)?;
                Ok(m1 == Some(Method::OneShot)
                    && m2 == Some(Method::OneShot)
                    && logged
                    && ctx.faults.stats.events.len() == 1 // quarantine is silent
                    && tempi.stats.degraded_sends == 1)
            } else {
                let (st1, m1) = tempi.recv(ctx, buf, 1, dt, Some(0), Some(0))?;
                let (st2, _) = tempi.recv(ctx, buf, 1, dt, Some(0), Some(1))?;
                Ok(st1.bytes == (64 << 10)
                    && st2.bytes == (64 << 10)
                    && m1 == Some(Method::OneShot))
            }
        })
        .unwrap();
        assert!(results[0], "rank 0 must degrade Device -> OneShot cleanly");
        assert!(results[1], "rank 1 must receive both degraded sends");
    }

    #[test]
    fn pack_source_out_of_bounds_is_an_error_not_corruption() {
        let mut ctx = ctx();
        let mut tempi = Tempi::default();
        let dt = ctx.type_vector(16, 8, 16, MPI_BYTE).unwrap(); // needs 248 B
        tempi.type_commit(&mut ctx, dt).unwrap();
        let src = ctx.gpu.malloc(64).unwrap(); // too small
        let dst = ctx.gpu.malloc(128).unwrap();
        let mut pos = 0;
        let err = tempi
            .pack(&mut ctx, src, 1, dt, dst, 128, &mut pos)
            .unwrap_err();
        assert!(matches!(err, MpiError::Gpu(_)), "{err}");
    }

    #[test]
    fn plan_survives_type_free_like_real_mpi_handles() {
        // MPI says a committed type may be freed after communication
        // completes; TEMPI's cached plan keeps working for the handle it
        // already captured (the plan owns its layout).
        let mut ctx = ctx();
        let mut tempi = Tempi::default();
        let dt = ctx.type_vector(4, 4, 8, MPI_BYTE).unwrap();
        let plan = tempi.type_commit(&mut ctx, dt).unwrap();
        ctx.type_free(dt).unwrap();
        // the cached Arc is still valid
        assert_eq!(plan.size, 16);
        assert!(tempi.plan(dt).is_some());
    }

    #[test]
    fn system_recv_rejects_pipelined_parts_instead_of_partial_delivery() {
        let mut cfg = WorldConfig::summit(2);
        cfg.net.ranks_per_node = 1;
        let results = World::run(&cfg, |ctx| {
            let dt = ctx.type_vector(4096, 256, 512, MPI_BYTE)?; // 1 MiB
            if ctx.rank == 0 {
                let mut tempi = Tempi::new(TempiConfig {
                    force_method: Some(Method::Pipelined),
                    pipeline_chunk: Some(128 << 10),
                    ..TempiConfig::default()
                });
                tempi.type_commit(ctx, dt)?;
                let buf = ctx.gpu.malloc(4096 * 512)?;
                tempi.send(ctx, buf, 1, dt, 1, 0)?;
                Ok(true)
            } else {
                // receiver WITHOUT TEMPI: must error, not truncate
                ctx.type_commit_native(dt)?;
                let buf = ctx.gpu.malloc(4096 * 512)?;
                let r = ctx.recv(buf, 1, dt, Some(0), Some(0));
                Ok(matches!(r, Err(MpiError::InvalidArg(_))))
            }
        })
        .unwrap();
        assert!(results[1], "plain recv must reject pipelined parts");
    }

    #[test]
    fn online_tuner_is_deterministic_per_seed() {
        let mut cfg = WorldConfig::summit(2);
        cfg.net.ranks_per_node = 1;
        let run = |seed: u64| -> Vec<Option<Method>> {
            let results = World::run(&cfg, |ctx| {
                let mut tempi = Tempi::new(TempiConfig {
                    tuner: TunerMode::Online,
                    tuner_seed: seed,
                    ..TempiConfig::default()
                });
                let dt = ctx.type_vector(256, 64, 128, MPI_BYTE)?; // 16 KiB
                tempi.type_commit(ctx, dt)?;
                let buf = ctx.gpu.malloc(255 * 128 + 64)?;
                let mut methods = Vec::new();
                for i in 0..40 {
                    if ctx.rank == 0 {
                        methods.push(tempi.send(ctx, buf, 1, dt, 1, i)?);
                    } else {
                        tempi.recv(ctx, buf, 1, dt, Some(0), Some(i))?;
                    }
                }
                Ok(methods)
            })
            .unwrap();
            results[0].clone()
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b, "same seed must replay the same method sequence");
        assert_eq!(a.len(), 40);
        assert!(a.iter().all(|m| m.is_some()));
    }

    #[test]
    fn online_tuner_converges_to_the_model_choice() {
        // The simulator prices sends with the same cost tables the model
        // reads, so every calibration ratio stays ~1.0 and the memoized
        // method must settle on the oracle model's pick despite probes.
        let mut cfg = WorldConfig::summit(2);
        cfg.net.ranks_per_node = 1;
        let results = World::run(&cfg, |ctx| {
            let mut tempi = Tempi::new(TempiConfig {
                tuner: TunerMode::Online,
                ..TempiConfig::default()
            });
            let dt = ctx.type_vector(256, 64, 128, MPI_BYTE)?; // 16 KiB
            let plan = tempi.type_commit(ctx, dt)?;
            let buf = ctx.gpu.malloc(255 * 128 + 64)?;
            for i in 0..32 {
                if ctx.rank == 0 {
                    tempi.send(ctx, buf, 1, dt, 1, i)?;
                } else {
                    tempi.recv(ctx, buf, 1, dt, Some(0), Some(i))?;
                }
            }
            if ctx.rank != 0 {
                return Ok(true);
            }
            let oracle = tempi.send_model(ctx, 1).choose(
                plan.size as usize,
                plan.block_bytes(),
                plan.word(),
            );
            let key = BucketKey::new(1, plan.block_bytes(), plan.size as usize, false);
            let memo = tempi.tuner.memoized(&key);
            Ok(memo.map(|(m, _)| m) == Some(oracle) && tempi.stats.tuner_bucket_hits > 0)
        })
        .unwrap();
        assert!(results[0], "memoized method must match the oracle model");
    }

    #[test]
    fn online_tuner_discovers_pipelined_on_large_coarse_objects() {
        // 4 MiB with 4 KiB blocks is the staged/one-shot crossover where
        // the §8 pipeline wins; with no configured chunk, Online mode must
        // find it (and a chunk) by itself on the very first (cold) send.
        let mut cfg = WorldConfig::summit(2);
        cfg.net.ranks_per_node = 1;
        let count = (4usize << 20) / 4096;
        let results = World::run(&cfg, |ctx| {
            let mut tempi = Tempi::new(TempiConfig {
                tuner: TunerMode::Online,
                ..TempiConfig::default()
            });
            let dt = ctx.type_vector(count as i32, 4096, 8192, MPI_BYTE)?;
            tempi.type_commit(ctx, dt)?;
            let buf = ctx.gpu.malloc(count * 8192)?;
            if ctx.rank == 0 {
                tempi.send(ctx, buf, 1, dt, 1, 0)
            } else {
                let (_, m) = tempi.recv(ctx, buf, 1, dt, Some(0), Some(0))?;
                Ok(m)
            }
        })
        .unwrap();
        assert_eq!(results[0], Some(Method::Pipelined));
        assert_eq!(results[1], Some(Method::Pipelined));
    }

    #[test]
    fn quarantine_expires_and_the_rung_is_retried() {
        // Same OOM world as send_degrades_to_oneshot_on_device_oom, but
        // after the quarantine TTL lapses the ladder must retry Device and
        // log a *second* degradation when it fails again.
        let mut cfg = WorldConfig::summit(2);
        cfg.net.ranks_per_node = 1;
        cfg.device.global_mem_bytes = 160 << 10;
        let results = World::run(&cfg, |ctx| {
            let mut tempi = Tempi::new(TempiConfig {
                force_method: Some(Method::Device),
                ..TempiConfig::default()
            });
            let dt = ctx.type_vector(1024, 64, 128, MPI_BYTE)?; // 64 KiB
            tempi.type_commit(ctx, dt)?;
            let buf = ctx.gpu.malloc(128 << 10)?;
            if ctx.rank == 0 {
                tempi.send(ctx, buf, 1, dt, 1, 0)?; // degrade + quarantine
                let e1 = ctx.faults.stats.events.len();
                tempi.send(ctx, buf, 1, dt, 1, 1)?; // silent: still banned
                let e2 = ctx.faults.stats.events.len();
                ctx.clock.advance(QUARANTINE_TTL + SimTime::from_ms(1));
                tempi.send(ctx, buf, 1, dt, 1, 2)?; // retried, fails anew
                let e3 = ctx.faults.stats.events.len();
                Ok((e1, e2, e3, tempi.stats.degraded_sends))
            } else {
                tempi.recv(ctx, buf, 1, dt, Some(0), Some(0))?;
                tempi.recv(ctx, buf, 1, dt, Some(0), Some(1))?;
                tempi.recv(ctx, buf, 1, dt, Some(0), Some(2))?;
                Ok((0, 0, 0, 0))
            }
        })
        .unwrap();
        assert_eq!(results[0], (1, 1, 2, 2));
    }

    #[test]
    fn steady_state_sends_allocate_nothing_and_reuse_launch_geometry() {
        let mut cfg = WorldConfig::summit(2);
        cfg.net.ranks_per_node = 1;
        let results = World::run(&cfg, |ctx| {
            let mut tempi = Tempi::default();
            let dt = ctx.type_vector(64, 16, 64, MPI_BYTE)?;
            tempi.type_commit(ctx, dt)?;
            let span = 63 * 64 + 16;
            let buf = ctx.gpu.malloc(span)?;
            // warm-up: allocates intermediates, derives launch geometry
            for i in 0..2 {
                if ctx.rank == 0 {
                    tempi.send(ctx, buf, 1, dt, 1, i)?;
                } else {
                    tempi.recv(ctx, buf, 1, dt, Some(0), Some(i))?;
                }
            }
            let warm_allocs = tempi.stats.pool_fresh_allocs;
            let warm_hits = tempi.stats.pool_hits;
            for i in 2..12 {
                if ctx.rank == 0 {
                    tempi.send(ctx, buf, 1, dt, 1, i)?;
                } else {
                    tempi.recv(ctx, buf, 1, dt, Some(0), Some(i))?;
                }
            }
            Ok((
                tempi.stats.pool_fresh_allocs - warm_allocs,
                tempi.stats.pool_hits - warm_hits,
                tempi.stats.launch_cache_hits,
            ))
        })
        .unwrap();
        for (rank, &(fresh, hits, launch_hits)) in results.iter().enumerate() {
            assert_eq!(fresh, 0, "rank {rank} allocated in steady state");
            assert!(hits >= 10, "rank {rank} pool hits only {hits}");
            assert!(launch_hits > 0, "rank {rank} never hit the launch cache");
        }
    }

    #[test]
    fn empty_type_pack_is_noop() {
        let mut ctx = ctx();
        let mut tempi = Tempi::default();
        let dt = ctx.type_contiguous(0, MPI_INT).unwrap();
        let plan = tempi.type_commit(&mut ctx, dt).unwrap();
        assert_eq!(plan.kind, PlanKind::Empty);
        let b = ctx.gpu.malloc(4).unwrap();
        let mut pos = 0;
        tempi.pack(&mut ctx, b, 5, dt, b, 4, &mut pos).unwrap();
        assert_eq!(pos, 0);
    }
}
