//! Kernel selection and execution (paper §3.3).
//!
//! After canonicalization, each MPI datatype maps to **one of two kernel
//! implementations parameterized by a word size `W`** (plus the trivial
//! `cudaMemcpyAsync` path for 1-D objects and the block-list kernel for
//! the indexed-family extension):
//!
//! * the word size `W` is "the largest GPU-native type that is both
//!   aligned to the object and is a factor of `count[0]`";
//! * thread-block dimensions are "filled from X to Z by the largest power
//!   of two that encompasses the structure", capped at 1024 threads;
//! * the grid covers the whole object, with the dynamic `incount`
//!   repetition folded into the grid's Z extent;
//! * no object metadata is stored on the GPU — kernel parameters are the
//!   scalar values of the [`StridedBlock`].

use gpu_sim::{
    div_ceil, next_pow2, Dim3, GpuPtr, GpuResult, LaunchConfig, MemSpace, PackDir, PackTarget,
    SimClock, Stream,
};
use mpi_sim::{MpiError, MpiResult};
use serde::{Deserialize, Serialize};

use crate::ir::strided_block::StridedBlock;
use crate::ir::BlockList;

/// Which implementation a committed type selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KernelKind {
    /// 1-D (contiguous): a single `cudaMemcpyAsync` + synchronize.
    Memcpy1D,
    /// 2-D strided kernel (X → `counts[0]`, Y → `counts[1]`).
    Pack2D,
    /// 3-D strided kernel (X, Y, Z → `counts[0..3]`).
    Pack3D,
    /// Higher-dimensional objects: the 3-D kernel with outer loops.
    PackND,
    /// Irregular block list (indexed-family extension).
    BlockList,
}

/// A committed type's kernel parameterization.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelPlan {
    /// The canonical strided object.
    pub sb: StridedBlock,
    /// Selected word size `W` in bytes (1, 2, 4, 8, or 16).
    pub word: usize,
    /// Thread-block geometry.
    pub block: Dim3,
    /// Which kernel implementation.
    pub kind: KernelKind,
}

/// Largest GPU-native word (16, 8, 4, 2, 1 bytes) that divides the block
/// length, the start offset, and every stride — i.e. is "aligned to the
/// object and a factor of `count[0]`".
pub fn select_word(sb: &StridedBlock) -> usize {
    for w in [16i64, 8, 4, 2] {
        let aligned = sb.start % w == 0
            && sb.block_bytes() % w == 0
            && sb.strides[1..].iter().all(|&s| s % w == 0);
        if aligned {
            return w as usize;
        }
    }
    1
}

/// Paper §3.3 block-dimension rule: fill X→Z with covering powers of two
/// under the 1024-thread (and 64-in-Z) limits.
pub fn select_block_dims(sb: &StridedBlock, word: usize) -> Dim3 {
    let x_work = div_ceil(sb.block_bytes() as u64, word as u64);
    let bx = next_pow2(x_work).min(1024) as u32;
    let mut budget = 1024 / bx.max(1);
    let by = if sb.ndims() >= 2 {
        (next_pow2(sb.counts[1] as u64) as u32).clamp(1, budget.max(1))
    } else {
        1
    };
    budget /= by.max(1);
    let bz = if sb.ndims() >= 3 {
        (next_pow2(sb.counts[2] as u64) as u32).clamp(1, budget.clamp(1, 64))
    } else {
        1
    };
    Dim3::new(bx.max(1), by, bz)
}

/// Build the full plan for a canonical strided object. `force_word`
/// supports the word-size ablation.
pub fn select_kernel(sb: StridedBlock, force_word: Option<usize>) -> KernelPlan {
    let word = force_word.unwrap_or_else(|| select_word(&sb));
    let block = select_block_dims(&sb, word);
    let kind = match sb.ndims() {
        1 => KernelKind::Memcpy1D,
        2 => KernelKind::Pack2D,
        3 => KernelKind::Pack3D,
        _ => KernelKind::PackND,
    };
    KernelPlan {
        sb,
        word,
        block,
        kind,
    }
}

impl KernelPlan {
    /// Grid geometry covering `incount` repetitions of the object.
    pub fn grid_for(&self, incount: usize) -> Dim3 {
        let gx = div_ceil(
            div_ceil(self.sb.block_bytes() as u64, self.word as u64),
            self.block.x as u64,
        )
        .clamp(1, 2_147_483_647) as u32;
        let gy = if self.sb.ndims() >= 2 {
            div_ceil(self.sb.counts[1] as u64, self.block.y as u64).clamp(1, 65_535) as u32
        } else {
            1
        };
        let inner_z = if self.sb.ndims() >= 3 {
            div_ceil(self.sb.counts[2] as u64, self.block.z as u64).max(1)
        } else {
            1
        };
        let gz = (inner_z * incount.max(1) as u64).clamp(1, 65_535) as u32;
        Dim3::new(gx, gy, gz)
    }

    /// Launch geometry for `incount` repetitions.
    pub fn launch_config(&self, incount: usize) -> LaunchConfig {
        LaunchConfig {
            grid: self.grid_for(incount),
            block: self.block,
        }
    }
}

/// Degrade the static word size to what the actual buffer alignments
/// permit (pointers are only known at pack time).
pub fn effective_word(plan_word: usize, a: GpuPtr, b: GpuPtr) -> usize {
    let mut w = plan_word;
    while w > 1 && (a.alignment() % w != 0 || b.alignment() % w != 0) {
        w /= 2;
    }
    w
}

/// Classify the pack target from the packed-side (contiguous) location:
/// device global memory → the "device" method rates; any host-side space →
/// the "one-shot" interconnect rates.
pub fn target_for(strided_space: MemSpace, packed_space: MemSpace) -> PackTarget {
    if strided_space.on_host() || packed_space.on_host() {
        PackTarget::MappedHost
    } else {
        PackTarget::Device
    }
}

fn ptr_at(p: GpuPtr, off: i64) -> MpiResult<GpuPtr> {
    p.offset_by(off).ok_or_else(|| {
        MpiError::InvalidArg(format!("datatype reaches {off} bytes before buffer start"))
    })
}

/// Execute the strided pack/unpack kernel: one launch + synchronize moving
/// `incount` objects between the strided buffer (`strided`, items
/// `item_extent` bytes apart) and the packed buffer (`packed`, starting at
/// `packed_off`). Returns the number of bytes moved.
#[allow(clippy::too_many_arguments)]
pub fn execute_strided(
    plan: &KernelPlan,
    stream: &mut Stream,
    clock: &mut SimClock,
    dir: PackDir,
    strided: GpuPtr,
    item_extent: i64,
    incount: usize,
    packed: GpuPtr,
    packed_off: usize,
) -> MpiResult<usize> {
    execute_strided_with(
        plan,
        None,
        stream,
        clock,
        dir,
        strided,
        item_extent,
        incount,
        packed,
        packed_off,
    )
}

/// [`execute_strided`] with an optionally pre-computed launch geometry.
/// The hot send path caches the [`LaunchConfig`] per `(datatype, incount)`
/// so steady-state sends skip the grid/block derivation; `None` derives it
/// from the plan as usual. The caller must have derived `cached` from this
/// same plan and `incount`.
#[allow(clippy::too_many_arguments)]
pub fn execute_strided_with(
    plan: &KernelPlan,
    cached: Option<LaunchConfig>,
    stream: &mut Stream,
    clock: &mut SimClock,
    dir: PackDir,
    strided: GpuPtr,
    item_extent: i64,
    incount: usize,
    packed: GpuPtr,
    packed_off: usize,
) -> MpiResult<usize> {
    let total = (plan.sb.data_bytes() as usize) * incount;
    let word = effective_word(plan.word, strided, packed.add(packed_off));
    let target = target_for(strided.space, packed.space);
    let cost = stream.cost_model().pack_kernel_time_dims(
        dir,
        target,
        total,
        plan.sb.block_bytes() as usize,
        word,
        plan.sb.ndims(),
    );
    let cfg = match cached {
        Some(cfg) => {
            debug_assert_eq!(cfg, plan.launch_config(incount));
            cfg
        }
        None => plan.launch_config(incount),
    };
    let name = match (dir, plan.kind) {
        (PackDir::Pack, KernelKind::Pack2D) => "tempi_pack_2d",
        (PackDir::Pack, KernelKind::Pack3D) => "tempi_pack_3d",
        (PackDir::Pack, _) => "tempi_pack_nd",
        (PackDir::Unpack, KernelKind::Pack2D) => "tempi_unpack_2d",
        (PackDir::Unpack, KernelKind::Pack3D) => "tempi_unpack_3d",
        (PackDir::Unpack, _) => "tempi_unpack_nd",
    };
    let sb = plan.sb.clone();
    let block_len = sb.block_bytes() as usize;
    let run = |mem: &mut gpu_sim::Memory| -> GpuResult<()> {
        let mut pos = packed_off;
        for item in 0..incount {
            let base = item as i64 * item_extent;
            let mut fault = None;
            sb.for_each_block(|off| {
                if fault.is_some() {
                    return;
                }
                let s = match strided.offset_by(base + off) {
                    Some(p) => p,
                    None => {
                        fault = Some(gpu_sim::GpuError::OutOfBounds {
                            alloc: strided.alloc_id(),
                            offset: 0,
                            len: block_len,
                            size: 0,
                        });
                        return;
                    }
                };
                let p = packed.add(pos);
                let (dst, src) = match dir {
                    PackDir::Pack => (p, s),
                    PackDir::Unpack => (s, p),
                };
                if let Err(e) = mem.dev_copy(dst, src, block_len) {
                    fault = Some(e);
                }
                pos += block_len;
            });
            if let Some(e) = fault {
                return Err(e);
            }
        }
        Ok(())
    };
    stream
        .launch(clock, name, cfg, cost, run)
        .map_err(MpiError::Gpu)?;
    stream.synchronize(clock);
    Ok(total)
}

/// Execute one *asynchronous* pack/unpack kernel over a contiguous range
/// of block indices of the object stream (blocks of all `incount` items
/// numbered globally). Does **not** synchronize — the pipelined send path
/// (paper §8) overlaps these launches with wire transfers and joins at the
/// end. Returns the bytes moved by this launch.
#[allow(clippy::too_many_arguments)]
pub fn execute_strided_range_async(
    plan: &KernelPlan,
    stream: &mut Stream,
    clock: &mut SimClock,
    dir: PackDir,
    strided: GpuPtr,
    item_extent: i64,
    packed: GpuPtr,
    packed_off: usize,
    first_block: i64,
    nblocks: i64,
) -> MpiResult<usize> {
    let block_len = plan.sb.block_bytes() as usize;
    let blocks_per_item = plan.sb.block_count();
    let total = block_len * nblocks as usize;
    let word = effective_word(plan.word, strided, packed.add(packed_off));
    let target = target_for(strided.space, packed.space);
    let cost = stream.cost_model().pack_kernel_time_dims(
        dir,
        target,
        total,
        block_len,
        word,
        plan.sb.ndims(),
    );
    // 1-D launch over this range's blocks (one warp per block)
    let cfg = LaunchConfig {
        grid: Dim3::new(
            div_ceil(nblocks as u64 * 32, 256).clamp(1, 65_535) as u32,
            1,
            1,
        ),
        block: Dim3::new(256, 1, 1),
    };
    let sb = plan.sb.clone();
    let run = |mem: &mut gpu_sim::Memory| -> GpuResult<()> {
        let mut pos = packed_off;
        for gbi in first_block..first_block + nblocks {
            let item = gbi / blocks_per_item;
            let within = gbi % blocks_per_item;
            let off = item * item_extent + sb.block_offset(within);
            let s = strided
                .offset_by(off)
                .ok_or(gpu_sim::GpuError::OutOfBounds {
                    alloc: strided.alloc_id(),
                    offset: 0,
                    len: block_len,
                    size: 0,
                })?;
            let p = packed.add(pos);
            let (dst, src) = match dir {
                PackDir::Pack => (p, s),
                PackDir::Unpack => (s, p),
            };
            mem.dev_copy(dst, src, block_len)?;
            pos += block_len;
        }
        Ok(())
    };
    let name = match dir {
        PackDir::Pack => "tempi_pack_range",
        PackDir::Unpack => "tempi_unpack_range",
    };
    stream
        .launch(clock, name, cfg, cost, run)
        .map_err(MpiError::Gpu)?;
    Ok(total)
}

/// Execute the block-list kernel for the indexed-family extension: one
/// launch moving `incount` repetitions of an irregular block list.
#[allow(clippy::too_many_arguments)]
pub fn execute_blocklist(
    blocks: &BlockList,
    stream: &mut Stream,
    clock: &mut SimClock,
    dir: PackDir,
    strided: GpuPtr,
    item_extent: i64,
    incount: usize,
    packed: GpuPtr,
    packed_off: usize,
) -> MpiResult<usize> {
    let item_bytes = blocks.data_bytes() as usize;
    let total = item_bytes * incount;
    let nblocks = blocks.blocks.len().max(1) * incount.max(1);
    let avg_block = (total / nblocks).max(1);
    let target = target_for(strided.space, packed.space);
    let cost = stream
        .cost_model()
        .pack_kernel_time(dir, target, total, avg_block, 1);
    // one warp per block, 256 threads per thread-block
    let cfg = LaunchConfig {
        grid: Dim3::new(
            div_ceil(nblocks as u64 * 32, 256).clamp(1, 65_535) as u32,
            1,
            1,
        ),
        block: Dim3::new(256, 1, 1),
    };
    let blocks = blocks.clone();
    let run = |mem: &mut gpu_sim::Memory| -> GpuResult<()> {
        let mut pos = packed_off;
        for item in 0..incount {
            let base = item as i64 * item_extent;
            for &(off, len) in &blocks.blocks {
                let s = strided
                    .offset_by(base + off)
                    .ok_or(gpu_sim::GpuError::OutOfBounds {
                        alloc: strided.alloc_id(),
                        offset: 0,
                        len: len as usize,
                        size: 0,
                    })?;
                let p = packed.add(pos);
                let (dst, src) = match dir {
                    PackDir::Pack => (p, s),
                    PackDir::Unpack => (s, p),
                };
                mem.dev_copy(dst, src, len as usize)?;
                pos += len as usize;
            }
        }
        Ok(())
    };
    let name = match dir {
        PackDir::Pack => "tempi_pack_blocklist",
        PackDir::Unpack => "tempi_unpack_blocklist",
    };
    stream
        .launch(clock, name, cfg, cost, run)
        .map_err(MpiError::Gpu)?;
    stream.synchronize(clock);
    Ok(total)
}

/// The future-work DMA path (paper §8): pack a 2-D object with
/// `cudaMemcpy2DAsync` instead of a kernel. Only applicable to 2-D plans.
#[allow(clippy::too_many_arguments)]
pub fn execute_dma_2d(
    plan: &KernelPlan,
    stream: &mut Stream,
    clock: &mut SimClock,
    dir: PackDir,
    strided: GpuPtr,
    item_extent: i64,
    incount: usize,
    packed: GpuPtr,
    packed_off: usize,
) -> MpiResult<usize> {
    debug_assert_eq!(plan.sb.ndims(), 2);
    let width = plan.sb.block_bytes() as usize;
    let rows = plan.sb.counts[1] as usize;
    let spitch = plan.sb.strides[1] as usize;
    let mut moved = 0usize;
    for item in 0..incount {
        let s = ptr_at(strided, item as i64 * item_extent + plan.sb.start)?;
        let p = packed.add(packed_off + item * width * rows);
        match dir {
            PackDir::Pack => {
                stream
                    .memcpy_2d_async(clock, p, width, s, spitch, width, rows)
                    .map_err(MpiError::Gpu)?;
            }
            PackDir::Unpack => {
                stream
                    .memcpy_2d_async(clock, s, spitch, p, width, width, rows)
                    .map_err(MpiError::Gpu)?;
            }
        }
        moved += width * rows;
    }
    stream.synchronize(clock);
    Ok(moved)
}

/// The future-work DMA path for 3-D objects: `cudaMemcpy3DAsync` instead
/// of a kernel. Only applicable to 3-D plans whose strides are a valid
/// pitched layout (slice stride a multiple of the row stride).
#[allow(clippy::too_many_arguments)]
pub fn execute_dma_3d(
    plan: &KernelPlan,
    stream: &mut Stream,
    clock: &mut SimClock,
    dir: PackDir,
    strided: GpuPtr,
    item_extent: i64,
    incount: usize,
    packed: GpuPtr,
    packed_off: usize,
) -> MpiResult<usize> {
    debug_assert_eq!(plan.sb.ndims(), 3);
    let width = plan.sb.block_bytes() as usize;
    let rows = plan.sb.counts[1] as usize;
    let slices = plan.sb.counts[2] as usize;
    let spitch = plan.sb.strides[1] as usize;
    let sslice = plan.sb.strides[2] as usize;
    if sslice < spitch * rows {
        return Err(MpiError::InvalidArg(
            "3-D object is not a pitched layout; DMA path inapplicable".to_string(),
        ));
    }
    let mut moved = 0usize;
    for item in 0..incount {
        let s = strided
            .offset_by(item as i64 * item_extent + plan.sb.start)
            .ok_or_else(|| MpiError::InvalidArg("type reaches before buffer".to_string()))?;
        let p = packed.add(packed_off + item * width * rows * slices);
        match dir {
            PackDir::Pack => {
                stream
                    .memcpy_3d_async(
                        clock,
                        p,
                        width,
                        width * rows,
                        s,
                        spitch,
                        sslice,
                        width,
                        rows,
                        slices,
                    )
                    .map_err(MpiError::Gpu)?;
            }
            PackDir::Unpack => {
                stream
                    .memcpy_3d_async(
                        clock,
                        s,
                        spitch,
                        sslice,
                        p,
                        width,
                        width * rows,
                        width,
                        rows,
                        slices,
                    )
                    .map_err(MpiError::Gpu)?;
            }
        }
        moved += width * rows * slices;
    }
    stream.synchronize(clock);
    Ok(moved)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{DeviceProps, GpuContext, GpuCostModel};

    fn sb2d() -> StridedBlock {
        StridedBlock {
            start: 0,
            counts: vec![100, 13],
            strides: vec![1, 256],
        }
    }

    fn sb3d() -> StridedBlock {
        StridedBlock {
            start: 0,
            counts: vec![100, 13, 47],
            strides: vec![1, 256, 131072],
        }
    }

    #[test]
    fn word_selection_respects_divisibility_and_alignment() {
        // 100-byte blocks: divisible by 4 (and 2), strides 256: by 16 → W=4
        assert_eq!(select_word(&sb2d()), 4);
        // 128-byte blocks, 256 strides → 16
        let sb = StridedBlock {
            start: 0,
            counts: vec![128, 4],
            strides: vec![1, 256],
        };
        assert_eq!(select_word(&sb), 16);
        // odd block → 1
        let sb = StridedBlock {
            start: 0,
            counts: vec![37, 4],
            strides: vec![1, 256],
        };
        assert_eq!(select_word(&sb), 1);
        // unaligned start degrades
        let sb = StridedBlock {
            start: 2,
            counts: vec![128, 4],
            strides: vec![1, 256],
        };
        assert_eq!(select_word(&sb), 2);
        // odd stride degrades
        let sb = StridedBlock {
            start: 0,
            counts: vec![128, 4],
            strides: vec![1, 255],
        };
        assert_eq!(select_word(&sb), 1);
    }

    #[test]
    fn block_dims_fill_x_to_z_with_pow2() {
        // 100 B / W=4 = 25 work items → 32 in x; 13 rows → 16 in y;
        // 47 planes → budget 1024/(32*16)=2 → z=2
        let plan = select_kernel(sb3d(), None);
        assert_eq!(plan.word, 4);
        assert_eq!(plan.block, Dim3::new(32, 16, 2));
        assert_eq!(plan.kind, KernelKind::Pack3D);
    }

    #[test]
    fn block_never_exceeds_1024_threads() {
        let sb = StridedBlock {
            start: 0,
            counts: vec![8192, 1024, 64],
            strides: vec![1, 16384, 1 << 24],
        };
        let plan = select_kernel(sb, None);
        let threads = plan.block.count();
        assert!(threads <= 1024, "{threads}");
        // W=16 → 512 x-work items fill x first; y gets the leftover budget
        assert_eq!(plan.word, 16);
        assert_eq!(plan.block, Dim3::new(512, 2, 1));
        // forcing W=1 pushes x to the 1024 cap
        let plan1 = select_kernel(
            StridedBlock {
                start: 0,
                counts: vec![8192, 1024, 64],
                strides: vec![1, 16384, 1 << 24],
            },
            Some(1),
        );
        assert_eq!(plan1.block, Dim3::new(1024, 1, 1));
    }

    #[test]
    fn grid_covers_object_and_incount() {
        let plan = select_kernel(sb3d(), None);
        let g = plan.grid_for(2);
        // x: ceil(25/32)=1; y: ceil(13/16)=1; z: ceil(47/2)=24 × incount 2
        assert_eq!(g, Dim3::new(1, 1, 48));
        let cfg = plan.launch_config(2);
        DeviceProps::v100()
            .validate_launch(cfg.grid, cfg.block)
            .unwrap();
    }

    #[test]
    fn kernel_kind_by_dimensionality() {
        let c = StridedBlock {
            start: 0,
            counts: vec![4096],
            strides: vec![1],
        };
        assert_eq!(select_kernel(c, None).kind, KernelKind::Memcpy1D);
        assert_eq!(select_kernel(sb2d(), None).kind, KernelKind::Pack2D);
        let sb4 = StridedBlock {
            start: 0,
            counts: vec![8, 4, 4, 4],
            strides: vec![1, 16, 128, 1024],
        };
        assert_eq!(select_kernel(sb4, None).kind, KernelKind::PackND);
    }

    #[test]
    fn forced_word_overrides() {
        let plan = select_kernel(sb2d(), Some(1));
        assert_eq!(plan.word, 1);
    }

    fn gpu() -> (GpuContext, Stream, SimClock) {
        let ctx = GpuContext::new(DeviceProps::v100());
        let s = Stream::new(ctx.clone(), GpuCostModel::summit_v100());
        (ctx, s, SimClock::new())
    }

    #[test]
    fn strided_pack_moves_correct_bytes() {
        let (ctx, mut stream, mut clock) = gpu();
        let sb = StridedBlock {
            start: 4,
            counts: vec![2, 3],
            strides: vec![1, 8],
        };
        let plan = select_kernel(sb, None);
        let src = ctx.malloc(32).unwrap();
        let dst = ctx.malloc(6).unwrap();
        let data: Vec<u8> = (0..32).collect();
        ctx.memory().poke(src, &data).unwrap();
        let n = execute_strided(
            &plan,
            &mut stream,
            &mut clock,
            PackDir::Pack,
            src,
            0,
            1,
            dst,
            0,
        )
        .unwrap();
        assert_eq!(n, 6);
        // blocks at 4, 12, 20, each 2 bytes
        assert_eq!(
            ctx.memory().peek(dst, 6).unwrap(),
            vec![4, 5, 12, 13, 20, 21]
        );
        assert_eq!(stream.stats().kernel_launches, 1);
    }

    #[test]
    fn strided_unpack_inverts() {
        let (ctx, mut stream, mut clock) = gpu();
        let sb = StridedBlock {
            start: 0,
            counts: vec![4, 4],
            strides: vec![1, 16],
        };
        let plan = select_kernel(sb, None);
        let orig = ctx.malloc(64).unwrap();
        let packed = ctx.malloc(16).unwrap();
        let back = ctx.malloc(64).unwrap();
        let data: Vec<u8> = (0..64).map(|i| i as u8 ^ 0x5A).collect();
        ctx.memory().poke(orig, &data).unwrap();
        execute_strided(
            &plan,
            &mut stream,
            &mut clock,
            PackDir::Pack,
            orig,
            0,
            1,
            packed,
            0,
        )
        .unwrap();
        execute_strided(
            &plan,
            &mut stream,
            &mut clock,
            PackDir::Unpack,
            back,
            0,
            1,
            packed,
            0,
        )
        .unwrap();
        let got = ctx.memory().peek(back, 64).unwrap();
        for row in 0..4 {
            let o = row * 16;
            assert_eq!(&got[o..o + 4], &data[o..o + 4]);
        }
    }

    #[test]
    fn incount_packs_multiple_items() {
        let (ctx, mut stream, mut clock) = gpu();
        let sb = StridedBlock {
            start: 0,
            counts: vec![2, 2],
            strides: vec![1, 4],
        };
        let plan = select_kernel(sb, None);
        let src = ctx.malloc(32).unwrap();
        let dst = ctx.malloc(8).unwrap();
        let data: Vec<u8> = (0..32).collect();
        ctx.memory().poke(src, &data).unwrap();
        // item extent 6 (like a committed vector type)
        execute_strided(
            &plan,
            &mut stream,
            &mut clock,
            PackDir::Pack,
            src,
            6,
            2,
            dst,
            0,
        )
        .unwrap();
        assert_eq!(
            ctx.memory().peek(dst, 8).unwrap(),
            vec![0, 1, 4, 5, 6, 7, 10, 11]
        );
        // still ONE kernel launch for both items (the paper's point about
        // amortizing launch cost over incount)
        assert_eq!(stream.stats().kernel_launches, 1);
    }

    #[test]
    fn oneshot_target_into_mapped_memory() {
        let (ctx, mut stream, mut clock) = gpu();
        let sb = StridedBlock {
            start: 0,
            counts: vec![4, 2],
            strides: vec![1, 8],
        };
        let plan = select_kernel(sb, None);
        let src = ctx.malloc(16).unwrap();
        let mapped = ctx.mapped_alloc(8).unwrap();
        ctx.memory()
            .poke(src, &(0..16).collect::<Vec<u8>>())
            .unwrap();
        execute_strided(
            &plan,
            &mut stream,
            &mut clock,
            PackDir::Pack,
            src,
            0,
            1,
            mapped,
            0,
        )
        .unwrap();
        assert_eq!(
            ctx.memory().peek(mapped, 8).unwrap(),
            vec![0, 1, 2, 3, 8, 9, 10, 11]
        );
        // one-shot runs at interconnect rates: slower than device target
        let t_dev =
            stream
                .cost_model()
                .pack_kernel_time(PackDir::Pack, PackTarget::Device, 1 << 20, 64, 8);
        let t_osh = stream.cost_model().pack_kernel_time(
            PackDir::Pack,
            PackTarget::MappedHost,
            1 << 20,
            64,
            8,
        );
        assert!(t_osh > t_dev);
        assert_eq!(
            target_for(MemSpace::Device, MemSpace::Mapped),
            PackTarget::MappedHost
        );
        assert_eq!(
            target_for(MemSpace::Device, MemSpace::Device),
            PackTarget::Device
        );
    }

    #[test]
    fn pack_into_pageable_host_faults() {
        let (ctx, mut stream, mut clock) = gpu();
        let sb = StridedBlock {
            start: 0,
            counts: vec![4, 2],
            strides: vec![1, 8],
        };
        let plan = select_kernel(sb, None);
        let src = ctx.malloc(16).unwrap();
        let host = ctx.host_alloc(8).unwrap();
        let err = execute_strided(
            &plan,
            &mut stream,
            &mut clock,
            PackDir::Pack,
            src,
            0,
            1,
            host,
            0,
        )
        .unwrap_err();
        assert!(matches!(err, MpiError::Gpu(_)), "{err}");
    }

    #[test]
    fn blocklist_kernel_moves_blocks_in_order() {
        let (ctx, mut stream, mut clock) = gpu();
        let bl = BlockList {
            blocks: vec![(8, 2), (0, 4)],
        };
        let src = ctx.malloc(16).unwrap();
        let dst = ctx.malloc(6).unwrap();
        ctx.memory()
            .poke(src, &(0..16).collect::<Vec<u8>>())
            .unwrap();
        let n = execute_blocklist(
            &bl,
            &mut stream,
            &mut clock,
            PackDir::Pack,
            src,
            0,
            1,
            dst,
            0,
        )
        .unwrap();
        assert_eq!(n, 6);
        assert_eq!(ctx.memory().peek(dst, 6).unwrap(), vec![8, 9, 0, 1, 2, 3]);
        assert_eq!(stream.stats().kernel_launches, 1);
    }

    #[test]
    fn dma_2d_path_packs_rows() {
        let (ctx, mut stream, mut clock) = gpu();
        let sb = StridedBlock {
            start: 0,
            counts: vec![4, 4],
            strides: vec![1, 8],
        };
        let plan = select_kernel(sb, None);
        let src = ctx.malloc(32).unwrap();
        let dst = ctx.malloc(16).unwrap();
        ctx.memory()
            .poke(src, &(0..32).collect::<Vec<u8>>())
            .unwrap();
        let n = execute_dma_2d(
            &plan,
            &mut stream,
            &mut clock,
            PackDir::Pack,
            src,
            0,
            1,
            dst,
            0,
        )
        .unwrap();
        assert_eq!(n, 16);
        let want: Vec<u8> = (0..4u8).flat_map(|r| r * 8..r * 8 + 4).collect();
        assert_eq!(ctx.memory().peek(dst, 16).unwrap(), want);
        assert_eq!(stream.stats().memcpys_2d, 1);
    }

    #[test]
    fn effective_word_degrades_with_misaligned_pointers() {
        let ctx = GpuContext::new(DeviceProps::v100());
        let p = ctx.malloc(64).unwrap();
        assert_eq!(effective_word(8, p, p), 8);
        assert_eq!(effective_word(8, p.add(4), p), 4);
        assert_eq!(effective_word(8, p.add(4), p.add(2)), 2);
        assert_eq!(effective_word(8, p.add(1), p), 1);
    }

    #[test]
    fn packed_offset_is_respected() {
        let (ctx, mut stream, mut clock) = gpu();
        let sb = StridedBlock {
            start: 0,
            counts: vec![2, 2],
            strides: vec![1, 4],
        };
        let plan = select_kernel(sb, None);
        let src = ctx.malloc(8).unwrap();
        let dst = ctx.malloc(16).unwrap();
        ctx.memory()
            .poke(src, &(0..8).collect::<Vec<u8>>())
            .unwrap();
        execute_strided(
            &plan,
            &mut stream,
            &mut clock,
            PackDir::Pack,
            src,
            0,
            1,
            dst,
            4,
        )
        .unwrap();
        let got = ctx.memory().peek(dst, 16).unwrap();
        assert_eq!(&got[4..8], &[0, 1, 4, 5]);
        assert_eq!(&got[0..4], &[0, 0, 0, 0]);
    }
}
