//! Online calibration of the §5 send-method model.
//!
//! The paper picks device vs one-shot from *fixed*, machine-calibrated
//! constants (§5, Fig. 10). Hunold & Träff and Adefemi both observe that
//! the winning strategy shifts with message size, layout and
//! implementation, so a static table leaves speedup on the table. This
//! module keeps the analytical model as the *prior* and corrects it with
//! measurements taken on the virtual clock:
//!
//! - Every send is keyed into a **bucket**: (shape class, log₂ payload
//!   size, peer class). Shape class folds the plan kind and log₂ block
//!   bytes so "same layout, different count" sends share observations.
//! - Per GPU **component ratios** (measured ÷ modeled, EWMA-smoothed)
//!   calibrate each model term separately: pack/unpack per [`PackTarget`],
//!   copy-engine per [`CopyKind`], wire per ([`Transport`], peer class).
//!   Component ratios — not per-bucket totals — let one measured pack on a
//!   misaligned layout re-rank *every* bucket that shares the component.
//! - The per-bucket choice is the **argmin of the calibrated model** and
//!   is memoized; with probability ε (decaying per bucket visit) or after
//!   a virtual-time re-probe interval, a non-best method is chosen instead
//!   so its component ratios stay fresh.
//!
//! Everything is deterministic: the exploration RNG is a seeded
//! xorshift64*, and "time" is the rank's virtual clock, so the same seed
//! in a fault-free world replays the exact method sequence.

use std::collections::HashMap;

use gpu_sim::{CopyKind, PackTarget, SimTime};
use mpi_sim::Transport;

use crate::config::{Method, TunerMode};
use crate::model::SendModel;

/// Initial exploration probability for a warm bucket.
pub const EPSILON_0: f64 = 0.10;
/// Visits after which ε has halved (ε = ε₀ / (1 + visits / decay)).
pub const EPSILON_DECAY: f64 = 32.0;
/// Virtual-time interval after which a bucket re-probes a non-best method
/// even when ε says exploit. Long enough that steady-state benchmarks are
/// not perturbed.
pub const REPROBE_INTERVAL: SimTime = SimTime::from_ms(250);
/// Chunk sizes the tuner considers for the pipelined method, chosen around
/// the D2H/wire bandwidth crossover on Summit-class hardware.
pub const CHUNK_CANDIDATES: [usize; 5] = [64 << 10, 128 << 10, 256 << 10, 512 << 10, 1 << 20];

/// Deterministic xorshift64* generator (no external RNG dependency; `rand`
/// is a dev-dependency only).
#[derive(Debug, Clone)]
struct XorShift64Star {
    state: u64,
}

impl XorShift64Star {
    fn new(seed: u64) -> Self {
        // The all-zero state is absorbing; xor with an odd constant keeps
        // distinct seeds distinct and maps only one seed to zero.
        let mixed = seed ^ 0x9E37_79B9_7F4A_7C15;
        XorShift64Star {
            state: if mixed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                mixed
            },
        }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in [0, 1).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in [0, n). `n` must be positive.
    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// Exponentially weighted moving average of a measured/modeled ratio.
/// Starts at 1.0 (trust the model) and jumps to the first observation so a
/// single sample already corrects an obviously-wrong constant.
#[derive(Debug, Clone, Copy)]
struct Ewma {
    value: f64,
    samples: u32,
}

impl Ewma {
    const ALPHA: f64 = 0.25;

    fn new() -> Self {
        Ewma {
            value: 1.0,
            samples: 0,
        }
    }

    fn observe(&mut self, ratio: f64) {
        if !ratio.is_finite() || ratio <= 0.0 {
            return;
        }
        if self.samples == 0 {
            self.value = ratio;
        } else {
            self.value = (1.0 - Self::ALPHA) * self.value + Self::ALPHA * ratio;
        }
        self.samples = self.samples.saturating_add(1);
    }
}

/// Component calibration state: one EWMA ratio per model term family.
/// Indexed arrays rather than maps — the hot path reads these per send.
#[derive(Debug, Clone)]
struct Calibration {
    /// Pack/unpack kernel ratio per [`PackTarget`]: [Device, MappedHost].
    pack: [Ewma; 2],
    /// Copy-engine ratio per direction: [D2H, H2D].
    copy: [Ewma; 2],
    /// Wire ratio per ([`Transport`], peer class):
    /// [(Cpu, intra), (Cpu, inter), (Gpu, intra), (Gpu, inter)].
    wire: [Ewma; 4],
}

impl Calibration {
    fn new() -> Self {
        Calibration {
            pack: [Ewma::new(); 2],
            copy: [Ewma::new(); 2],
            wire: [Ewma::new(); 4],
        }
    }

    fn pack_idx(target: PackTarget) -> usize {
        match target {
            PackTarget::Device => 0,
            PackTarget::MappedHost => 1,
        }
    }

    /// D2D/H2H copies are not staged-path components; fold them onto the
    /// nearest engine direction so an observation is never dropped.
    fn copy_idx(kind: CopyKind) -> usize {
        match kind {
            CopyKind::D2H | CopyKind::D2D => 0,
            CopyKind::H2D | CopyKind::H2H => 1,
        }
    }

    fn wire_idx(transport: Transport, intra: bool) -> usize {
        match (transport, intra) {
            (Transport::Cpu, true) => 0,
            (Transport::Cpu, false) => 1,
            (Transport::Gpu, true) => 2,
            (Transport::Gpu, false) => 3,
        }
    }
}

/// The raw numbers one send presents to the model: total payload bytes,
/// contiguous block length, and the kernel word size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Workload {
    /// Total payload bytes.
    pub bytes: usize,
    /// Contiguous block length in bytes.
    pub block: usize,
    /// Kernel word size `W`.
    pub word: usize,
}

/// A send's calibration bucket: the shape class of its datatype, the log₂
/// size class of its payload, and the peer class of its destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BucketKey {
    /// Shape-class discriminant: 0 = contiguous, 1 = strided, 2 = block
    /// list, 3 = fallback/other.
    pub shape: u8,
    /// log₂ of the layout's contiguous block length in bytes.
    pub block_log2: u8,
    /// log₂ of the total payload bytes.
    pub size_log2: u8,
    /// Whether the peer shares this rank's node.
    pub intra_node: bool,
}

impl BucketKey {
    /// Build a key from raw layout numbers.
    pub fn new(shape: u8, block_bytes: usize, payload_bytes: usize, intra_node: bool) -> Self {
        BucketKey {
            shape,
            block_log2: block_bytes.max(1).ilog2() as u8,
            size_log2: payload_bytes.max(1).ilog2() as u8,
            intra_node,
        }
    }
}

/// The outcome of one [`Tuner::choose`] call, with the bookkeeping the
/// caller folds into `TempiStats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// The method to run.
    pub method: Method,
    /// For [`Method::Pipelined`], the tuned chunk size.
    pub chunk: Option<usize>,
    /// True when this call is an exploration probe (a deliberately
    /// non-best method run to refresh its component ratios).
    pub probe: bool,
    /// True when the decision came from a memoized bucket.
    pub bucket_hit: bool,
    /// True when the calibrated argmin differs from the bucket's previous
    /// memoized choice.
    pub switched: bool,
}

impl Decision {
    /// Where this decision came from, for trace instants: an exploration
    /// `"probe"`, a warm `"memo"` bucket, or a `"cold"` first evaluation.
    pub fn origin(&self) -> &'static str {
        if self.probe {
            "probe"
        } else if self.bucket_hit {
            "memo"
        } else {
            "cold"
        }
    }
}

#[derive(Debug, Clone)]
struct Bucket {
    chosen: Method,
    chunk: Option<usize>,
    visits: u64,
    last_probe: SimTime,
}

/// The per-rank autotuner: component calibration plus the per-bucket
/// memoized decisions.
#[derive(Debug, Clone)]
pub struct Tuner {
    mode: TunerMode,
    rng: XorShift64Star,
    calib: Calibration,
    buckets: HashMap<BucketKey, Bucket>,
}

impl Tuner {
    /// A tuner in `mode` whose exploration stream is driven by `seed`.
    pub fn new(mode: TunerMode, seed: u64) -> Self {
        Tuner {
            mode,
            rng: XorShift64Star::new(seed),
            calib: Calibration::new(),
            buckets: HashMap::new(),
        }
    }

    /// The configured decision mode.
    pub fn mode(&self) -> TunerMode {
        self.mode
    }

    /// Number of distinct buckets observed so far.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// The memoized (method, chunk) for a bucket, if it is warm.
    pub fn memoized(&self, key: &BucketKey) -> Option<(Method, Option<usize>)> {
        self.buckets.get(key).map(|b| (b.chosen, b.chunk))
    }

    /// Current calibration ratio for a pack/unpack target.
    pub fn pack_ratio(&self, target: PackTarget) -> f64 {
        self.calib.pack[Calibration::pack_idx(target)].value
    }

    /// Current calibration ratio for a copy-engine direction.
    pub fn copy_ratio(&self, kind: CopyKind) -> f64 {
        self.calib.copy[Calibration::copy_idx(kind)].value
    }

    /// Current calibration ratio for a wire (transport, peer-class) pair.
    pub fn wire_ratio(&self, transport: Transport, intra: bool) -> f64 {
        self.calib.wire[Calibration::wire_idx(transport, intra)].value
    }

    /// Record a measured pack or unpack against its modeled duration.
    /// No-op unless the tuner is in [`TunerMode::Online`].
    pub fn observe_pack(&mut self, target: PackTarget, modeled: SimTime, measured: SimTime) {
        if self.mode != TunerMode::Online {
            return;
        }
        let idx = Calibration::pack_idx(target);
        Self::feed(&mut self.calib.pack[idx], modeled, measured);
    }

    /// Record a measured copy-engine transfer against its modeled duration.
    /// No-op unless the tuner is in [`TunerMode::Online`].
    pub fn observe_copy(&mut self, kind: CopyKind, modeled: SimTime, measured: SimTime) {
        if self.mode != TunerMode::Online {
            return;
        }
        let idx = Calibration::copy_idx(kind);
        Self::feed(&mut self.calib.copy[idx], modeled, measured);
    }

    /// Record a measured wire transfer against its modeled duration. Wire
    /// time is only visible on the *receiving* clock in the simulator
    /// (senders pay just the send overhead), so this is fed from the
    /// receive path and calibrates this rank's future sends — exact under
    /// the symmetric traffic of ping-pong workloads, a prior elsewhere.
    /// No-op unless the tuner is in [`TunerMode::Online`].
    pub fn observe_wire(
        &mut self,
        transport: Transport,
        intra: bool,
        modeled: SimTime,
        measured: SimTime,
    ) {
        if self.mode != TunerMode::Online {
            return;
        }
        let idx = Calibration::wire_idx(transport, intra);
        Self::feed(&mut self.calib.wire[idx], modeled, measured);
    }

    fn feed(ewma: &mut Ewma, modeled: SimTime, measured: SimTime) {
        let m = modeled.as_ns_f64();
        if m > 0.0 {
            ewma.observe(measured.as_ns_f64() / m);
        }
    }

    /// Decide the method (and, for pipelined, the chunk) for one send.
    ///
    /// `allowed` is the candidate set after the caller's quarantine filter;
    /// it must be non-empty and ordered by the caller's preference for
    /// tie-stability. `now` is the rank's virtual clock, which drives the
    /// re-probe schedule.
    pub fn choose(
        &mut self,
        key: BucketKey,
        wl: Workload,
        model: &SendModel,
        allowed: &[Method],
        now: SimTime,
    ) -> Decision {
        debug_assert!(!allowed.is_empty());
        let (best, best_chunk) = self.argmin(model, allowed, wl, key.intra_node);

        match self.mode {
            TunerMode::Off => Decision {
                method: best,
                chunk: best_chunk,
                probe: false,
                bucket_hit: false,
                switched: false,
            },
            TunerMode::Model => {
                // Memoized analytical decision: no RNG, no re-probe, so a
                // warm bucket replays the model's choice verbatim.
                let (hit, switched) = match self.buckets.get_mut(&key) {
                    Some(b) => {
                        let switched = b.chosen != best;
                        b.chosen = best;
                        b.chunk = best_chunk;
                        b.visits += 1;
                        (true, switched)
                    }
                    None => {
                        self.buckets.insert(
                            key,
                            Bucket {
                                chosen: best,
                                chunk: best_chunk,
                                visits: 1,
                                last_probe: now,
                            },
                        );
                        (false, false)
                    }
                };
                Decision {
                    method: best,
                    chunk: best_chunk,
                    probe: false,
                    bucket_hit: hit,
                    switched,
                }
            }
            TunerMode::Online => self.choose_online(key, best, best_chunk, allowed, now),
        }
    }

    fn choose_online(
        &mut self,
        key: BucketKey,
        best: Method,
        best_chunk: Option<usize>,
        allowed: &[Method],
        now: SimTime,
    ) -> Decision {
        let others: Vec<Method> = allowed.iter().copied().filter(|m| *m != best).collect();
        match self.buckets.get_mut(&key) {
            Some(b) => {
                b.visits += 1;
                let eps = EPSILON_0 / (1.0 + b.visits as f64 / EPSILON_DECAY);
                let reprobe_due = now.saturating_sub(b.last_probe) >= REPROBE_INTERVAL;
                let explore = !others.is_empty() && (reprobe_due || self.rng.next_f64() < eps);
                if explore {
                    let pick = others[self.rng.below(others.len())];
                    b.last_probe = now;
                    Decision {
                        method: pick,
                        // Probing pipelined uses the current best-guess
                        // chunk so the observation is representative.
                        chunk: if pick == Method::Pipelined {
                            best_chunk.or(Some(CHUNK_CANDIDATES[2]))
                        } else {
                            None
                        },
                        probe: true,
                        bucket_hit: true,
                        switched: false,
                    }
                } else {
                    let switched = b.chosen != best;
                    b.chosen = best;
                    b.chunk = best_chunk;
                    Decision {
                        method: best,
                        chunk: best_chunk,
                        probe: false,
                        bucket_hit: true,
                        switched,
                    }
                }
            }
            None => {
                // Cold bucket: the ratios are 1.0 (or whatever other
                // buckets already taught us), so this is the analytical
                // model's choice. No exploration on first contact.
                self.buckets.insert(
                    key,
                    Bucket {
                        chosen: best,
                        chunk: best_chunk,
                        visits: 1,
                        last_probe: now,
                    },
                );
                Decision {
                    method: best,
                    chunk: best_chunk,
                    probe: false,
                    bucket_hit: false,
                    switched: false,
                }
            }
        }
    }

    /// Calibrated argmin over the allowed candidate set. For
    /// [`Method::Pipelined`] the inner argmin over [`CHUNK_CANDIDATES`]
    /// finds the chunk at the calibrated D2H/wire crossover.
    fn argmin(
        &self,
        model: &SendModel,
        allowed: &[Method],
        wl: Workload,
        intra: bool,
    ) -> (Method, Option<usize>) {
        let mut best = allowed[0];
        let mut best_chunk = None;
        let mut best_ns = f64::INFINITY;
        for &m in allowed {
            let (ns, chunk) = match m {
                Method::Pipelined => self.best_pipelined(model, wl, intra),
                _ => (self.estimate(model, m, wl, intra), None),
            };
            if ns < best_ns {
                best_ns = ns;
                best = m;
                best_chunk = chunk;
            }
        }
        (best, best_chunk)
    }

    /// Calibrated estimate (ns) of one method. Ratios multiply the model's
    /// terms component-wise; with no observations every ratio is 1.0 and
    /// this *is* the §5 model.
    fn estimate(&self, model: &SendModel, method: Method, wl: Workload, intra: bool) -> f64 {
        let Workload { bytes, block, word } = wl;
        let r_pack_dev = self.pack_ratio(PackTarget::Device);
        let r_pack_map = self.pack_ratio(PackTarget::MappedHost);
        match method {
            Method::Device => {
                let b = model.t_device(bytes, block, word);
                (b.pack + b.unpack).as_ns_f64() * r_pack_dev
                    + b.transfer.as_ns_f64() * self.wire_ratio(Transport::Gpu, intra)
            }
            Method::OneShot => {
                let b = model.t_oneshot(bytes, block, word);
                (b.pack + b.unpack).as_ns_f64() * r_pack_map
                    + b.transfer.as_ns_f64() * self.wire_ratio(Transport::Cpu, intra)
            }
            Method::Staged => {
                let b = model.t_staged(bytes, block, word);
                (b.pack + b.unpack).as_ns_f64() * r_pack_dev
                    + model.t_d2h(bytes).as_ns_f64() * self.copy_ratio(CopyKind::D2H)
                    + model.t_cpu_cpu(bytes).as_ns_f64() * self.wire_ratio(Transport::Cpu, intra)
                    + model.t_h2d(bytes).as_ns_f64() * self.copy_ratio(CopyKind::H2D)
            }
            Method::Pipelined => self.best_pipelined(model, wl, intra).0,
        }
    }

    /// Calibrated pipeline bound minimized over the chunk candidates.
    /// Returns infinity when no candidate is smaller than the payload
    /// (pipelining a one-chunk message is just staged with extra tags).
    fn best_pipelined(&self, model: &SendModel, wl: Workload, intra: bool) -> (f64, Option<usize>) {
        let Workload { bytes, block, word } = wl;
        let r_pack = self.pack_ratio(PackTarget::Device);
        let r_d2h = self.copy_ratio(CopyKind::D2H);
        let r_h2d = self.copy_ratio(CopyKind::H2D);
        let r_wire = self.wire_ratio(Transport::Cpu, intra);
        let mut best = (f64::INFINITY, None);
        for &chunk in CHUNK_CANDIDATES.iter().filter(|&&c| c < bytes) {
            let t = model.pipeline_terms(bytes, block, word, chunk);
            let pack = t.pack.as_ns_f64() * r_pack;
            let d2h = t.d2h.as_ns_f64() * r_d2h;
            let wire = t.wire.as_ns_f64() * r_wire;
            let h2d = t.h2d.as_ns_f64() * r_h2d;
            let unpack = t.unpack.as_ns_f64() * r_pack;
            let fill = pack + d2h + wire + h2d + unpack;
            let bottleneck = pack.max(d2h).max(wire).max(h2d).max(unpack);
            let ns = fill + bottleneck * (t.n - 1) as f64 + t.sync.as_ns_f64();
            if ns < best.0 {
                best = (ns, Some(chunk));
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> SendModel {
        SendModel::summit_internode()
    }

    const KEY: BucketKey = BucketKey {
        shape: 1,
        block_log2: 5,
        size_log2: 20,
        intra_node: false,
    };

    const fn wl(bytes: usize, block: usize, word: usize) -> Workload {
        Workload { bytes, block, word }
    }

    #[test]
    fn cold_bucket_matches_analytical_model() {
        let m = model();
        let mut t = Tuner::new(TunerMode::Online, 7);
        let bytes = 1 << 20;
        let d = t.choose(
            KEY,
            wl(bytes, 4096, 8),
            &m,
            &[Method::Device, Method::OneShot],
            SimTime::ZERO,
        );
        assert_eq!(d.method, m.choose(bytes, 4096, 8));
        assert!(!d.bucket_hit);
        assert!(!d.probe);
    }

    #[test]
    fn model_mode_memoizes_without_consuming_rng() {
        let m = model();
        let mut a = Tuner::new(TunerMode::Model, 1);
        let mut b = Tuner::new(TunerMode::Model, 2);
        let allowed = [Method::Device, Method::OneShot];
        // Different seeds, identical decisions for many visits: Model mode
        // must never consult the RNG.
        for i in 0..64 {
            let now = SimTime::from_us(i);
            let da = a.choose(KEY, wl(1 << 20, 4096, 8), &m, &allowed, now);
            let db = b.choose(KEY, wl(1 << 20, 4096, 8), &m, &allowed, now);
            assert_eq!(da.method, db.method);
            assert!(!da.probe && !db.probe);
        }
        assert_eq!(a.bucket_count(), 1);
    }

    #[test]
    fn same_seed_replays_identical_decision_sequence() {
        let m = model();
        let mut a = Tuner::new(TunerMode::Online, 42);
        let mut b = Tuner::new(TunerMode::Online, 42);
        let allowed = [Method::Device, Method::OneShot, Method::Staged];
        for i in 0..256u64 {
            let now = SimTime::from_us(i * 10);
            let da = a.choose(KEY, wl(1 << 20, 64, 4), &m, &allowed, now);
            let db = b.choose(KEY, wl(1 << 20, 64, 4), &m, &allowed, now);
            assert_eq!(da, db, "diverged at visit {i}");
        }
    }

    #[test]
    fn probes_happen_and_decay() {
        let m = model();
        let mut t = Tuner::new(TunerMode::Online, 1337);
        let allowed = [Method::Device, Method::OneShot];
        let mut probes = 0;
        for i in 0..512u64 {
            // Tight loop in virtual time: only ε-exploration triggers, not
            // the interval re-probe.
            let d = t.choose(KEY, wl(1 << 20, 64, 4), &m, &allowed, SimTime::from_us(i));
            probes += d.probe as u32;
        }
        assert!(probes > 0, "epsilon-greedy never explored");
        assert!(probes < 64, "explored too much: {probes}");
    }

    #[test]
    fn interval_reprobe_fires_on_the_virtual_clock() {
        let m = model();
        let mut t = Tuner::new(TunerMode::Online, 5);
        let allowed = [Method::Device, Method::OneShot];
        t.choose(KEY, wl(1 << 20, 64, 4), &m, &allowed, SimTime::ZERO);
        // Far past the re-probe interval: the next warm-bucket call must
        // be a probe regardless of what the RNG says.
        let d = t.choose(KEY, wl(1 << 20, 64, 4), &m, &allowed, SimTime::from_ms(500));
        assert!(d.probe);
    }

    #[test]
    fn calibration_flips_the_decision_when_a_component_is_slow() {
        // Oracle: at 1 MiB / 4 KiB blocks the model picks OneShot. Teach
        // the tuner that mapped-host packing actually runs 6x slower than
        // modeled; the calibrated argmin must flip to Device.
        let m = model();
        let bytes = 1 << 20;
        assert_eq!(m.choose(bytes, 4096, 8), Method::OneShot);
        let mut t = Tuner::new(TunerMode::Online, 9);
        let modeled = SimTime::from_us(10);
        for _ in 0..8 {
            t.observe_pack(PackTarget::MappedHost, modeled, SimTime::from_us(60));
        }
        assert!(t.pack_ratio(PackTarget::MappedHost) > 5.0);
        let d = t.choose(
            KEY,
            wl(bytes, 4096, 8),
            &m,
            &[Method::Device, Method::OneShot],
            SimTime::ZERO,
        );
        assert_eq!(d.method, Method::Device);
    }

    #[test]
    fn convergence_memoizes_the_oracle_best_method() {
        // With no observations the ratios are exactly 1.0, so after any
        // number of visits the memoized choice equals the oracle model's
        // fastest method — probes refresh ratios but never overwrite the
        // memo with a probed method.
        let m = model();
        let allowed = [Method::Device, Method::OneShot, Method::Staged];
        for (bytes, block, word) in [(1usize << 20, 4096usize, 8usize), (4 << 20, 16, 4)] {
            let mut t = Tuner::new(TunerMode::Online, 21);
            let key = BucketKey::new(1, block * word, bytes, false);
            for i in 0..128u64 {
                t.choose(
                    key,
                    wl(bytes, block, word),
                    &m,
                    &allowed,
                    SimTime::from_us(i),
                );
            }
            let oracle = m.choose(bytes, block, word);
            assert_eq!(t.memoized(&key).unwrap().0, oracle);
        }
    }

    #[test]
    fn pipelined_chunk_tracks_the_calibrated_crossover() {
        let m = model();
        let t = Tuner::new(TunerMode::Online, 3);
        // Large coarse object: pipelined must propose a chunk from the
        // candidate table, strictly smaller than the payload.
        let (ns, chunk) = t.best_pipelined(&m, wl(4 << 20, 4096, 8), false);
        assert!(ns.is_finite());
        let c = chunk.unwrap();
        assert!(CHUNK_CANDIDATES.contains(&c) && c < (4 << 20));
        // Small payload: no candidate fits, pipelined is never proposed.
        let (ns_small, chunk_small) = t.best_pipelined(&m, wl(16 << 10, 64, 4), false);
        assert!(ns_small.is_infinite() && chunk_small.is_none());
    }

    #[test]
    fn quarantined_methods_are_simply_absent_from_allowed() {
        // The caller expresses quarantine by shrinking `allowed`; with a
        // single candidate the tuner must return it and never probe.
        let m = model();
        let mut t = Tuner::new(TunerMode::Online, 11);
        for i in 0..64u64 {
            let d = t.choose(
                KEY,
                wl(1 << 20, 64, 4),
                &m,
                &[Method::OneShot],
                SimTime::from_ms(i * 300),
            );
            assert_eq!(d.method, Method::OneShot);
            assert!(!d.probe);
        }
    }
}
