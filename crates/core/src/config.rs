//! TEMPI runtime configuration.
//!
//! The real library is configured through environment variables; here the
//! same switches are a plain struct so experiments and ablations can set
//! them programmatically and deterministically.

use serde::{Deserialize, Serialize};
use tempi_trace::TraceLevel;

/// Which Section-5 communication method a datatype send uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Method {
    /// Pack to an intermediate *device* buffer, CUDA-aware send,
    /// device unpack (Eq. 1).
    Device,
    /// Pack directly into *mapped host* memory, CPU send, unpack from
    /// mapped memory (Eq. 2) — the method prior work preferred.
    OneShot,
    /// Device pack, explicit D2H, CPU send, H2D, device unpack (Eq. 3);
    /// never competitive per Fig. 8b, included for completeness.
    Staged,
    /// The §8 extension: the staged composition executed in chunks so the
    /// pack kernels, the PCIe/NVLink copies, the wire, and the unpack
    /// kernels all overlap. Enabled by [`TempiConfig::pipeline_chunk`].
    Pipelined,
}

/// How the per-send method decision is made.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TunerMode {
    /// Legacy behavior: evaluate the §5 analytical model from scratch on
    /// every send. No memoization, no measurement.
    Off,
    /// Memoize the analytical model's decision per (shape, size, peer)
    /// bucket. Identical choices to `Off`, amortized lookup cost. The
    /// default.
    #[default]
    Model,
    /// Full online calibration: virtual-time measurements of pack, copy
    /// and wire stages EWMA-correct the model's constants per bucket, the
    /// memoized choice is revisited epsilon-greedily under a seeded RNG,
    /// and the pipelined method (with an auto-tuned chunk) joins the
    /// candidate set. Requires TEMPI on both peers for pipelined sends,
    /// like [`TempiConfig::pipeline_chunk`].
    Online,
}

/// TEMPI configuration switches.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TempiConfig {
    /// Run the canonicalization fixed point (Alg. 5) at commit. Disabling
    /// this is the canonicalization ablation: kernels are parameterized by
    /// the *raw translated* tree, so equivalent constructions stop being
    /// treated equally.
    pub canonicalize: bool,
    /// Force the kernel word size `W` (the word-size ablation).
    pub force_word: Option<usize>,
    /// Force the send method instead of consulting the performance model
    /// (the method-selection ablation).
    pub force_method: Option<Method>,
    /// Use the DMA engine (`cudaMemcpy2DAsync` / `cudaMemcpy3DAsync`)
    /// instead of the 2-D/3-D kernels where applicable (paper §8 future
    /// work: "CUDA provides native APIs to handle 2D and 3D objects using
    /// the DMA engine").
    pub use_dma: bool,
    /// Translate top-level `MPI_Type_create_struct` to a block list served
    /// by the block-list kernel instead of falling back to copy-per-block
    /// (paper §8 future work: "extended to cover indexed and struct types
    /// with some additional kernels").
    pub extend_struct: bool,
    /// Pipeline the device method: pack/send/unpack in chunks of this many
    /// bytes so packing overlaps the wire (paper §8 future work: "prior
    /// work also suggests that pipelining packing operations with MPI send
    /// operations is optimal"). **Both communicating peers must have TEMPI
    /// interposed**: a pipelined transfer arrives as multiple tagged parts
    /// that only TEMPI's receive path reassembles (a plain system receive
    /// rejects them with an error rather than delivering partial data).
    pub pipeline_chunk: Option<usize>,
    /// Take a coordinated checkpoint every N halo-exchange iterations
    /// (`None` disables checkpointing). Snapshots are packed with the
    /// interposed `MPI_Pack`, framed with a content checksum, mirrored at
    /// a buddy rank, and committed with a two-phase generation protocol so
    /// recovery can rebuild dead ranks' subdomains without re-running.
    pub checkpoint_every: Option<usize>,
    /// How the per-send method decision is made: fresh model evaluation
    /// (`Off`), memoized model decision (`Model`, default), or online
    /// calibration with epsilon-greedy re-probing (`Online`).
    pub tuner: TunerMode,
    /// Seed for the tuner's exploration RNG. Same seed + same fault-free
    /// world ⇒ identical method sequence, so tuned runs replay exactly.
    pub tuner_seed: u64,
    /// Observability level (`TEMPI_TRACE`): `Off` keeps every tracer call
    /// a single branch, `Spans` records begin/end/GPU-complete events,
    /// `Full` adds per-call instants (tuner decisions, pool takes, wire
    /// departures) and live metrics. The level here configures the tracer
    /// the harness builds; the library itself only consults the
    /// [`tempi_trace::Tracer`] handed to each rank.
    pub trace: TraceLevel,
    /// Relative slack the performance-guidelines gate (`check_guidelines`)
    /// allows before a Hunold/Träff guideline counts as violated
    /// (`TEMPI_GUIDELINE_TOL`): a derived-datatype send may be up to
    /// `1 + guideline_tol` times slower than the pack-then-send / naive
    /// reference before G1/G2 flag it. The default 0.10 absorbs modeling
    /// asymmetries between the composed and fused paths (an extra
    /// dispatch, one barrier's skew) while catching method-choice
    /// regressions, which move cells by integer factors.
    pub guideline_tol: f64,
}

impl Default for TempiConfig {
    fn default() -> Self {
        TempiConfig {
            canonicalize: true,
            force_word: None,
            force_method: None,
            use_dma: false,
            extend_struct: false,
            pipeline_chunk: None,
            checkpoint_every: None,
            tuner: TunerMode::Model,
            tuner_seed: 0x7e3a_11c5,
            trace: TraceLevel::Off,
            guideline_tol: 0.10,
        }
    }
}

impl TempiConfig {
    /// Build a configuration from `TEMPI_*` environment variables, the way
    /// the real library is configured on a cluster where the application
    /// binary cannot be modified:
    ///
    /// | variable | effect |
    /// |---|---|
    /// | `TEMPI_NO_CANONICALIZE=1` | skip Algorithms 5–7 |
    /// | `TEMPI_FORCE_WORD=N` | force kernel word size (1/2/4/8/16) |
    /// | `TEMPI_METHOD=device\|oneshot\|staged\|pipelined` | force the §5 method |
    /// | `TEMPI_USE_DMA=1` | use the 2-D/3-D DMA engine where applicable |
    /// | `TEMPI_EXTEND_STRUCT=1` | enable the §8 struct block-list extension |
    /// | `TEMPI_PIPELINE_CHUNK=BYTES` | enable §8 pipelining with this chunk |
    /// | `TEMPI_CHECKPOINT_EVERY=N` | coordinated checkpoint every N iterations |
    /// | `TEMPI_TUNER=off\|model\|online` | method decision mode (default `model`) |
    /// | `TEMPI_TUNER_SEED=N` | seed for the tuner's exploration RNG |
    /// | `TEMPI_TRACE=off\|spans\|full` | observability level (default `off`) |
    /// | `TEMPI_GUIDELINE_TOL=F` | relative slack of the performance-guidelines gate (default `0.10`) |
    ///
    /// Unknown or malformed values are rejected with a message naming the
    /// variable, rather than silently ignored.
    pub fn from_env() -> Result<Self, String> {
        let mut cfg = TempiConfig::default();
        let flag = |name: &str| -> bool {
            std::env::var(name).is_ok_and(|v| v == "1" || v.eq_ignore_ascii_case("true"))
        };
        cfg.canonicalize = !flag("TEMPI_NO_CANONICALIZE");
        cfg.use_dma = flag("TEMPI_USE_DMA");
        cfg.extend_struct = flag("TEMPI_EXTEND_STRUCT");
        if let Ok(v) = std::env::var("TEMPI_FORCE_WORD") {
            let w: usize = v
                .parse()
                .map_err(|_| format!("TEMPI_FORCE_WORD must be an integer, got `{v}`"))?;
            if ![1, 2, 4, 8, 16].contains(&w) {
                return Err(format!("TEMPI_FORCE_WORD must be 1/2/4/8/16, got {w}"));
            }
            cfg.force_word = Some(w);
        }
        if let Ok(v) = std::env::var("TEMPI_METHOD") {
            cfg.force_method = Some(match v.to_ascii_lowercase().as_str() {
                "device" => Method::Device,
                "oneshot" | "one-shot" => Method::OneShot,
                "staged" => Method::Staged,
                "pipelined" => Method::Pipelined,
                other => {
                    return Err(format!(
                        "TEMPI_METHOD must be device/oneshot/staged/pipelined, got `{other}`"
                    ))
                }
            });
        }
        if let Ok(v) = std::env::var("TEMPI_PIPELINE_CHUNK") {
            let c: usize = v
                .parse()
                .map_err(|_| format!("TEMPI_PIPELINE_CHUNK must be bytes, got `{v}`"))?;
            if c == 0 {
                return Err("TEMPI_PIPELINE_CHUNK must be positive".to_string());
            }
            cfg.pipeline_chunk = Some(c);
        }
        if let Ok(v) = std::env::var("TEMPI_CHECKPOINT_EVERY") {
            let n: usize = v
                .parse()
                .map_err(|_| format!("TEMPI_CHECKPOINT_EVERY must be an integer, got `{v}`"))?;
            if n == 0 {
                return Err("TEMPI_CHECKPOINT_EVERY must be positive".to_string());
            }
            cfg.checkpoint_every = Some(n);
        }
        if let Ok(v) = std::env::var("TEMPI_TUNER") {
            cfg.tuner = match v.to_ascii_lowercase().as_str() {
                "off" => TunerMode::Off,
                "model" => TunerMode::Model,
                "online" => TunerMode::Online,
                other => {
                    return Err(format!(
                        "TEMPI_TUNER must be off/model/online, got `{other}`"
                    ))
                }
            };
        }
        if let Ok(v) = std::env::var("TEMPI_TUNER_SEED") {
            cfg.tuner_seed = v
                .parse()
                .map_err(|_| format!("TEMPI_TUNER_SEED must be an integer, got `{v}`"))?;
        }
        if let Ok(v) = std::env::var("TEMPI_TRACE") {
            cfg.trace = TraceLevel::parse(&v)?;
        }
        if let Ok(v) = std::env::var("TEMPI_GUIDELINE_TOL") {
            let tol: f64 = v
                .parse()
                .map_err(|_| format!("TEMPI_GUIDELINE_TOL must be a number, got `{v}`"))?;
            if !tol.is_finite() || !(0.0..1.0).contains(&tol) {
                return Err(format!("TEMPI_GUIDELINE_TOL must be in [0, 1), got {tol}"));
            }
            cfg.guideline_tol = tol;
        }
        if cfg.force_method == Some(Method::Pipelined) && cfg.pipeline_chunk.is_none() {
            return Err(
                "TEMPI_METHOD=pipelined requires TEMPI_PIPELINE_CHUNK to be set".to_string(),
            );
        }
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // NOTE: env-var tests mutate process environment; they run in one test
    // to avoid interference under the parallel test runner.
    #[test]
    fn from_env_parses_and_validates() {
        // SAFETY: single-threaded within this test; keys are unique to it.
        unsafe {
            std::env::set_var("TEMPI_NO_CANONICALIZE", "1");
            std::env::set_var("TEMPI_FORCE_WORD", "8");
            std::env::set_var("TEMPI_METHOD", "oneshot");
            std::env::set_var("TEMPI_PIPELINE_CHUNK", "262144");
            std::env::set_var("TEMPI_CHECKPOINT_EVERY", "5");
            std::env::set_var("TEMPI_TUNER", "online");
            std::env::set_var("TEMPI_TUNER_SEED", "12345");
        }
        let cfg = TempiConfig::from_env().unwrap();
        assert!(!cfg.canonicalize);
        assert_eq!(cfg.force_word, Some(8));
        assert_eq!(cfg.force_method, Some(Method::OneShot));
        assert_eq!(cfg.pipeline_chunk, Some(262144));
        assert_eq!(cfg.checkpoint_every, Some(5));
        assert_eq!(cfg.tuner, TunerMode::Online);
        assert_eq!(cfg.tuner_seed, 12345);

        unsafe {
            std::env::set_var("TEMPI_TUNER", "clairvoyant");
        }
        let err = TempiConfig::from_env().unwrap_err();
        assert!(err.contains("TEMPI_TUNER"), "{err}");
        unsafe {
            std::env::set_var("TEMPI_TUNER", "model");
            std::env::set_var("TEMPI_TUNER_SEED", "not-a-number");
        }
        let err = TempiConfig::from_env().unwrap_err();
        assert!(err.contains("TEMPI_TUNER_SEED"), "{err}");
        unsafe {
            std::env::remove_var("TEMPI_TUNER");
            std::env::remove_var("TEMPI_TUNER_SEED");
        }

        unsafe {
            std::env::set_var("TEMPI_FORCE_WORD", "3");
        }
        let err = TempiConfig::from_env().unwrap_err();
        assert!(err.contains("TEMPI_FORCE_WORD"), "{err}");

        unsafe {
            std::env::set_var("TEMPI_FORCE_WORD", "8");
            std::env::set_var("TEMPI_CHECKPOINT_EVERY", "0");
        }
        let err = TempiConfig::from_env().unwrap_err();
        assert!(err.contains("TEMPI_CHECKPOINT_EVERY"), "{err}");
        unsafe {
            std::env::set_var("TEMPI_CHECKPOINT_EVERY", "soon");
        }
        let err = TempiConfig::from_env().unwrap_err();
        assert!(err.contains("TEMPI_CHECKPOINT_EVERY"), "{err}");
        unsafe {
            std::env::remove_var("TEMPI_CHECKPOINT_EVERY");
        }

        unsafe {
            std::env::set_var("TEMPI_FORCE_WORD", "8");
            std::env::set_var("TEMPI_METHOD", "warp-drive");
        }
        let err = TempiConfig::from_env().unwrap_err();
        assert!(err.contains("TEMPI_METHOD"), "{err}");

        unsafe {
            std::env::set_var("TEMPI_METHOD", "pipelined");
            std::env::remove_var("TEMPI_PIPELINE_CHUNK");
        }
        let err = TempiConfig::from_env().unwrap_err();
        assert!(err.contains("requires TEMPI_PIPELINE_CHUNK"), "{err}");

        unsafe {
            std::env::set_var("TEMPI_METHOD", "device");
            std::env::set_var("TEMPI_TRACE", "full");
        }
        let cfg = TempiConfig::from_env().unwrap();
        assert_eq!(cfg.trace, TraceLevel::Full);
        unsafe {
            std::env::set_var("TEMPI_TRACE", "loud");
        }
        let err = TempiConfig::from_env().unwrap_err();
        assert!(err.contains("TEMPI_TRACE"), "{err}");
        unsafe {
            std::env::remove_var("TEMPI_TRACE");
        }

        unsafe {
            std::env::set_var("TEMPI_GUIDELINE_TOL", "0.05");
        }
        let cfg = TempiConfig::from_env().unwrap();
        assert!((cfg.guideline_tol - 0.05).abs() < 1e-12);
        for bad in ["snug", "-0.1", "1.5", "inf"] {
            unsafe {
                std::env::set_var("TEMPI_GUIDELINE_TOL", bad);
            }
            let err = TempiConfig::from_env().unwrap_err();
            assert!(err.contains("TEMPI_GUIDELINE_TOL"), "{bad}: {err}");
        }
        unsafe {
            std::env::remove_var("TEMPI_GUIDELINE_TOL");
        }

        unsafe {
            std::env::remove_var("TEMPI_NO_CANONICALIZE");
            std::env::remove_var("TEMPI_FORCE_WORD");
            std::env::remove_var("TEMPI_METHOD");
        }
        let cfg = TempiConfig::from_env().unwrap();
        assert_eq!(cfg, TempiConfig::default());
    }

    #[test]
    fn defaults_enable_the_paper_pipeline() {
        let c = TempiConfig::default();
        assert!(c.canonicalize);
        assert!(c.force_word.is_none());
        assert!(c.force_method.is_none());
        assert!(!c.use_dma);
        assert!(!c.extend_struct);
        assert!(c.pipeline_chunk.is_none());
        assert!(c.checkpoint_every.is_none());
        assert_eq!(c.tuner, TunerMode::Model);
        assert!((c.guideline_tol - 0.10).abs() < 1e-12);
    }
}
