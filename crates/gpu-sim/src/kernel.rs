//! Kernel launch geometry.
//!
//! The simulator does not emulate individual threads — kernel *bodies* are
//! Rust closures that perform the whole data movement — but launch geometry
//! is still computed, validated against device limits, and used by the cost
//! model, because TEMPI's kernel-selection logic (Section 3.3) is about
//! choosing exactly these dimensions.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A CUDA-style 3-component extent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Dim3 {
    /// Extent in x (fastest-varying).
    pub x: u32,
    /// Extent in y.
    pub y: u32,
    /// Extent in z (slowest-varying).
    pub z: u32,
}

impl Dim3 {
    /// A 1×1×1 extent.
    pub const ONE: Dim3 = Dim3 { x: 1, y: 1, z: 1 };

    /// Construct from three extents.
    pub const fn new(x: u32, y: u32, z: u32) -> Self {
        Dim3 { x, y, z }
    }

    /// Alias of [`Dim3::new`] reading naturally at call sites that spell
    /// out all three dims.
    pub const fn xyz(x: u32, y: u32, z: u32) -> Self {
        Dim3 { x, y, z }
    }

    /// Total number of elements (`x * y * z`).
    pub fn count(self) -> u64 {
        self.x as u64 * self.y as u64 * self.z as u64
    }
}

impl fmt::Display for Dim3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

/// Grid + block geometry for one kernel launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LaunchConfig {
    /// Number of blocks in each dimension.
    pub grid: Dim3,
    /// Threads per block in each dimension.
    pub block: Dim3,
}

impl LaunchConfig {
    /// Total threads across the launch.
    pub fn total_threads(self) -> u64 {
        self.grid.count() * self.block.count()
    }
}

impl fmt::Display for LaunchConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<<<{}, {}>>>", self.grid, self.block)
    }
}

/// Smallest power of two ≥ `n` (and ≥ 1). Used by TEMPI's block-dimension
/// fill rule: "each kernel dimension is filled from X to Z by the largest
/// power of two that encompasses the structure".
pub fn next_pow2(n: u64) -> u64 {
    n.max(1).next_power_of_two()
}

/// Ceiling division for grid sizing.
pub fn div_ceil(a: u64, b: u64) -> u64 {
    debug_assert!(b > 0);
    a.div_ceil(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dim3_count() {
        assert_eq!(Dim3::new(4, 3, 2).count(), 24);
        assert_eq!(Dim3::ONE.count(), 1);
    }

    #[test]
    fn launch_total_threads() {
        let cfg = LaunchConfig {
            grid: Dim3::new(10, 2, 1),
            block: Dim3::new(256, 2, 1),
        };
        assert_eq!(cfg.total_threads(), 10 * 2 * 256 * 2);
    }

    #[test]
    fn next_pow2_basics() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(2), 2);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(100), 128);
        assert_eq!(next_pow2(1024), 1024);
        assert_eq!(next_pow2(1025), 2048);
    }

    #[test]
    fn div_ceil_basics() {
        assert_eq!(div_ceil(0, 4), 0);
        assert_eq!(div_ceil(1, 4), 1);
        assert_eq!(div_ceil(4, 4), 1);
        assert_eq!(div_ceil(5, 4), 2);
    }

    #[test]
    fn display_formats() {
        let cfg = LaunchConfig {
            grid: Dim3::new(2, 1, 1),
            block: Dim3::new(128, 8, 1),
        };
        assert_eq!(format!("{cfg}"), "<<<(2, 1, 1), (128, 8, 1)>>>");
    }
}
