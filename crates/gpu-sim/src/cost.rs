//! Analytic cost model for simulated GPU operations.
//!
//! Every timed quantity in the reproduction flows through this module. The
//! constants are calibrated to the paper's Summit measurements (Section 6,
//! Figs. 8–9):
//!
//! * `cudaMemcpyAsync` + `cudaStreamSynchronize` latency floor ≈ **11 µs**
//!   for D2H/H2D (Fig. 8a), decomposed here as 5 µs async-call overhead +
//!   5 µs synchronize overhead + 1 µs copy-engine setup;
//! * kernel launch ≈ **4.5 µs** (Fig. 8c);
//! * device-side pack kernel peak ≈ **212 GB/s** pack / **202 GB/s** unpack,
//!   with the coalescing knee at a **32 B** contiguous block (Fig. 9);
//! * one-shot (mapped-host) pack peak ≈ **32.5 GB/s** pack / **39 GB/s**
//!   unpack, knee at **128 B** (Fig. 9);
//! * D2H/H2D engine bandwidth ≈ 25 GB/s (the 80 µs D2H+H2D gap at 1 MiB in
//!   Fig. 8b).
//!
//! The model prices a pack/unpack kernel as
//!
//! ```text
//! t = max(t_min, total_bytes / (peak × eff_block × eff_util × eff_word))
//! eff_block = min(1, block_bytes / knee)          // coalescing
//! eff_util  = total / (total + half_util_bytes)   // occupancy ramp
//! eff_word  = f(W)                                // load width (ablation)
//! ```
//!
//! which reproduces the paper's qualitative findings: larger objects are
//! faster (better utilization), larger contiguous blocks are faster up to
//! the knee (coalescing), and unpack is slower than pack (uncoalesced
//! writes vs uncoalesced reads).

use serde::{Deserialize, Serialize};

use crate::clock::SimTime;
use crate::memory::MemSpace;

/// Direction classification of a plain memory copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CopyKind {
    /// Host → device.
    H2D,
    /// Device → host.
    D2H,
    /// Device → device (same GPU).
    D2D,
    /// Host → host.
    H2H,
}

impl CopyKind {
    /// Infer the copy kind from the two endpoint spaces, as
    /// `cudaMemcpyDefault` does with unified addressing.
    pub fn infer(dst: MemSpace, src: MemSpace) -> CopyKind {
        match (dst.on_host(), src.on_host()) {
            (false, true) => CopyKind::H2D,
            (true, false) => CopyKind::D2H,
            (false, false) => CopyKind::D2D,
            (true, true) => CopyKind::H2H,
        }
    }
}

/// Whether a datatype kernel gathers into a contiguous buffer (pack) or
/// scatters out of one (unpack). Unpack is priced slower: its strided side
/// is the *write* side, and uncoalesced writes cost more than uncoalesced
/// reads (Section 6.2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PackDir {
    /// Gather strided → contiguous.
    Pack,
    /// Scatter contiguous → strided.
    Unpack,
}

/// Where the contiguous side of a pack/unpack lives. Determines whether the
/// kernel runs at HBM rates ("device" method) or interconnect rates
/// ("one-shot" method into mapped host memory).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PackTarget {
    /// Contiguous buffer in device global memory.
    Device,
    /// Contiguous buffer in mapped (zero-copy) host memory.
    MappedHost,
}

/// Calibrated cost parameters for one simulated GPU + driver stack.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuCostModel {
    /// CPU-side overhead of one kernel launch (`cudaLaunchKernel`).
    pub kernel_launch_overhead: SimTime,
    /// CPU-side overhead of one `cudaMemcpyAsync` call.
    pub memcpy_async_overhead: SimTime,
    /// CPU-side overhead of `cudaStreamSynchronize` (paid even if the
    /// stream is already idle).
    pub stream_sync_overhead: SimTime,
    /// Copy-engine setup time per transfer (paid on the GPU timeline).
    pub copy_engine_setup: SimTime,
    /// Extra copy-engine time per row of a 2D/3D strided DMA transfer.
    pub copy_engine_row_overhead: SimTime,
    /// Host→device engine bandwidth, bytes per nanosecond.
    pub h2d_bpns: f64,
    /// Device→host engine bandwidth, bytes per nanosecond.
    pub d2h_bpns: f64,
    /// Device→device copy bandwidth, bytes per nanosecond.
    pub d2d_bpns: f64,
    /// Host→host copy bandwidth, bytes per nanosecond.
    pub h2h_bpns: f64,
    /// Peak device-method pack bandwidth, bytes/ns (212 on Summit).
    pub device_pack_peak_bpns: f64,
    /// Peak device-method unpack bandwidth, bytes/ns (202 on Summit).
    pub device_unpack_peak_bpns: f64,
    /// Peak one-shot pack bandwidth into mapped host memory, bytes/ns (32.5).
    pub oneshot_pack_peak_bpns: f64,
    /// Peak one-shot unpack bandwidth from mapped host memory, bytes/ns (39).
    pub oneshot_unpack_peak_bpns: f64,
    /// Contiguous-block size at which device-method coalescing saturates (32 B).
    pub device_coalesce_knee: usize,
    /// Contiguous-block size at which one-shot coalescing saturates (128 B).
    pub oneshot_coalesce_knee: usize,
    /// Object size at which a kernel reaches half of peak utilization.
    pub half_utilization_bytes: usize,
    /// Minimum on-GPU execution time of any kernel.
    pub kernel_min_exec: SimTime,
    /// CPU cost of a fresh `cudaMalloc`/`cudaHostAlloc` (why TEMPI pools
    /// its intermediate buffers).
    pub alloc_overhead: SimTime,
    /// CPU cost of `cudaEventRecord` / `cudaStreamWaitEvent`.
    pub event_overhead: SimTime,
}

impl GpuCostModel {
    /// Calibration for a Summit node (V100 + POWER9, CUDA 11.0.221,
    /// driver 418.116.00) — the platform of Figs. 8–12.
    pub fn summit_v100() -> Self {
        GpuCostModel {
            kernel_launch_overhead: SimTime::from_us_f64(4.5),
            memcpy_async_overhead: SimTime::from_us(5),
            stream_sync_overhead: SimTime::from_us(5),
            copy_engine_setup: SimTime::from_us(1),
            copy_engine_row_overhead: SimTime::from_ns(100),
            h2d_bpns: 22.0,
            d2h_bpns: 22.0,
            d2d_bpns: 700.0,
            h2h_bpns: 20.0,
            device_pack_peak_bpns: 212.0,
            device_unpack_peak_bpns: 202.0,
            oneshot_pack_peak_bpns: 32.5,
            oneshot_unpack_peak_bpns: 39.0,
            device_coalesce_knee: 32,
            oneshot_coalesce_knee: 128,
            half_utilization_bytes: 128 << 10,
            kernel_min_exec: SimTime::from_us(2),
            alloc_overhead: SimTime::from_us(100),
            event_overhead: SimTime::from_ns(800),
        }
    }

    /// Calibration for the paper's GTX 1070 workstation (openmpi / mvapich
    /// single-node platforms). Lower link and memory bandwidth, slightly
    /// lower driver overheads (x86 vs POWER9).
    pub fn workstation_gtx1070() -> Self {
        GpuCostModel {
            kernel_launch_overhead: SimTime::from_us_f64(3.0),
            memcpy_async_overhead: SimTime::from_us(3),
            stream_sync_overhead: SimTime::from_us(3),
            copy_engine_setup: SimTime::from_us(1),
            copy_engine_row_overhead: SimTime::from_ns(120),
            h2d_bpns: 12.0,
            d2h_bpns: 12.0,
            d2d_bpns: 220.0,
            h2h_bpns: 15.0,
            device_pack_peak_bpns: 120.0,
            device_unpack_peak_bpns: 110.0,
            oneshot_pack_peak_bpns: 10.0,
            oneshot_unpack_peak_bpns: 11.0,
            device_coalesce_knee: 32,
            oneshot_coalesce_knee: 128,
            half_utilization_bytes: 64 << 10,
            kernel_min_exec: SimTime::from_us(2),
            alloc_overhead: SimTime::from_us(80),
            event_overhead: SimTime::from_ns(600),
        }
    }

    /// Engine bandwidth (bytes/ns) for a copy kind. Exposed so online
    /// calibration can compare the copy engine against wire bandwidths
    /// (the pipelined-chunk crossover) without re-deriving it from timed
    /// transfers.
    pub fn copy_engine_bpns(&self, kind: CopyKind) -> f64 {
        match kind {
            CopyKind::H2D => self.h2d_bpns,
            CopyKind::D2H => self.d2h_bpns,
            CopyKind::D2D => self.d2d_bpns,
            CopyKind::H2H => self.h2h_bpns,
        }
    }

    /// Engine (GPU-timeline) duration of a plain copy of `bytes`.
    pub fn copy_engine_time(&self, kind: CopyKind, bytes: usize) -> SimTime {
        let bw = self.copy_engine_bpns(kind);
        self.copy_engine_setup + SimTime::from_ns_f64(bytes as f64 / bw)
    }

    /// Engine duration of a strided 2D/3D DMA copy (`cudaMemcpy2D/3D`
    /// style): a per-row overhead plus the payload at engine bandwidth.
    pub fn copy_engine_time_2d(&self, kind: CopyKind, row_bytes: usize, rows: usize) -> SimTime {
        let linear = self.copy_engine_time(kind, row_bytes * rows);
        linear + self.copy_engine_row_overhead * rows as u64
    }

    /// Coalescing efficiency for a contiguous block of `block_bytes`
    /// accessed on its strided side, for the given target.
    pub fn coalesce_efficiency(&self, target: PackTarget, block_bytes: usize) -> f64 {
        let knee = match target {
            PackTarget::Device => self.device_coalesce_knee,
            PackTarget::MappedHost => self.oneshot_coalesce_knee,
        } as f64;
        (block_bytes as f64 / knee).min(1.0)
    }

    /// GPU-utilization ramp: small objects cannot fill the machine.
    pub fn utilization(&self, total_bytes: usize) -> f64 {
        let n = total_bytes as f64;
        n / (n + self.half_utilization_bytes as f64)
    }

    /// Efficiency multiplier for the kernel's load/store word size `W`
    /// (1, 2, 4, 8 or 16 bytes). Wide words reduce instruction counts;
    /// the effect is secondary to coalescing. Exposed for the word-size
    /// ablation.
    pub fn word_efficiency(&self, word_bytes: usize) -> f64 {
        match word_bytes {
            0 | 1 => 0.55,
            2 => 0.70,
            3 => 0.70,
            4..=7 => 0.85,
            _ => 1.0,
        }
    }

    /// Peak bandwidth (bytes/ns) of a pack/unpack kernel for the given
    /// direction and target.
    pub fn pack_peak_bpns(&self, dir: PackDir, target: PackTarget) -> f64 {
        match (dir, target) {
            (PackDir::Pack, PackTarget::Device) => self.device_pack_peak_bpns,
            (PackDir::Unpack, PackTarget::Device) => self.device_unpack_peak_bpns,
            (PackDir::Pack, PackTarget::MappedHost) => self.oneshot_pack_peak_bpns,
            (PackDir::Unpack, PackTarget::MappedHost) => self.oneshot_unpack_peak_bpns,
        }
    }

    /// On-GPU execution time of a pack/unpack kernel moving `total_bytes`
    /// organized as contiguous blocks of `block_bytes`, using `word_bytes`
    /// loads/stores. Excludes launch and synchronize overheads, which the
    /// stream machinery adds. Assumes a ≤3-D kernel; see
    /// [`GpuCostModel::pack_kernel_time_dims`] for higher-rank objects.
    pub fn pack_kernel_time(
        &self,
        dir: PackDir,
        target: PackTarget,
        total_bytes: usize,
        block_bytes: usize,
        word_bytes: usize,
    ) -> SimTime {
        self.pack_kernel_time_dims(dir, target, total_bytes, block_bytes, word_bytes, 3)
    }

    /// [`GpuCostModel::pack_kernel_time`] with an explicit object rank:
    /// dimensions beyond the 3 the hardware grid covers are per-thread
    /// outer loops with index arithmetic, each costing ~15% of throughput
    /// (this is what makes un-canonicalized trees with spurious count-1
    /// dimensions slower even when their block size is unchanged).
    pub fn pack_kernel_time_dims(
        &self,
        dir: PackDir,
        target: PackTarget,
        total_bytes: usize,
        block_bytes: usize,
        word_bytes: usize,
        ndims: usize,
    ) -> SimTime {
        if total_bytes == 0 {
            return self.kernel_min_exec;
        }
        let dims_eff = 1.0 / (1.0 + 0.15 * ndims.saturating_sub(3) as f64);
        let peak = self.pack_peak_bpns(dir, target);
        let eff = self.coalesce_efficiency(target, block_bytes)
            * self.utilization(total_bytes)
            * self.word_efficiency(word_bytes)
            * dims_eff;
        let bw = (peak * eff).max(1e-6);
        self.kernel_min_exec
            .max(SimTime::from_ns_f64(total_bytes as f64 / bw))
    }

    /// Effective end-to-end bandwidth (bytes/ns) of a pack operation
    /// including launch + synchronize overhead, for reporting.
    pub fn pack_effective_bpns(
        &self,
        dir: PackDir,
        target: PackTarget,
        total_bytes: usize,
        block_bytes: usize,
        word_bytes: usize,
    ) -> f64 {
        let t = self.kernel_launch_overhead
            + self.pack_kernel_time(dir, target, total_bytes, block_bytes, word_bytes)
            + self.stream_sync_overhead;
        total_bytes as f64 / t.as_ns_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> GpuCostModel {
        GpuCostModel::summit_v100()
    }

    #[test]
    fn memcpy_floor_is_11us_with_call_and_sync() {
        // call (5) + sync (5) + engine setup (1) = 11 µs floor for a tiny copy
        let m = m();
        let total =
            m.memcpy_async_overhead + m.stream_sync_overhead + m.copy_engine_time(CopyKind::D2H, 1);
        let us = total.as_us_f64();
        assert!((us - 11.0).abs() < 0.1, "floor was {us} µs");
    }

    #[test]
    fn one_mib_h2d_is_tens_of_us() {
        let m = m();
        let t = m.copy_engine_time(CopyKind::H2D, 1 << 20).as_us_f64();
        // 1 MiB / 22 GB/s ≈ 48 µs + 1 µs setup
        assert!(t > 45.0 && t < 52.0, "got {t} µs");
    }

    #[test]
    fn copy_kind_inference() {
        use MemSpace::*;
        assert_eq!(CopyKind::infer(Device, Host), CopyKind::H2D);
        assert_eq!(CopyKind::infer(Host, Device), CopyKind::D2H);
        assert_eq!(CopyKind::infer(Device, Device), CopyKind::D2D);
        assert_eq!(CopyKind::infer(Pinned, Mapped), CopyKind::H2H);
        // mapped memory counts as host-side for engine transfers
        assert_eq!(CopyKind::infer(Device, Mapped), CopyKind::H2D);
    }

    #[test]
    fn device_pack_reaches_near_peak_for_large_coalesced_objects() {
        let m = m();
        let t = m.pack_kernel_time(PackDir::Pack, PackTarget::Device, 64 << 20, 512, 8);
        let bw = (64 << 20) as f64 / t.as_ns_f64();
        assert!(bw > 200.0, "bw = {bw} B/ns");
        assert!(bw <= 212.0 + 1e-9);
    }

    #[test]
    fn oneshot_pack_capped_at_interconnect_rate() {
        let m = m();
        let t = m.pack_kernel_time(PackDir::Pack, PackTarget::MappedHost, 64 << 20, 512, 8);
        let bw = (64 << 20) as f64 / t.as_ns_f64();
        assert!(bw > 30.0 && bw <= 32.5 + 1e-9, "bw = {bw}");
    }

    #[test]
    fn unpack_is_slower_than_pack() {
        let m = m();
        for target in [PackTarget::Device, PackTarget::MappedHost] {
            // device unpack slower; one-shot unpack actually faster per Fig. 9
            let pack = m.pack_kernel_time(PackDir::Pack, target, 4 << 20, 64, 8);
            let unpack = m.pack_kernel_time(PackDir::Unpack, target, 4 << 20, 64, 8);
            if target == PackTarget::Device {
                assert!(unpack > pack);
            } else {
                assert!(unpack < pack); // 39 GB/s > 32.5 GB/s, per the paper
            }
        }
    }

    #[test]
    fn coalescing_knees_match_paper() {
        let m = m();
        // device knee at 32 B: efficiency saturates there
        assert!(m.coalesce_efficiency(PackTarget::Device, 32) == 1.0);
        assert!(m.coalesce_efficiency(PackTarget::Device, 16) == 0.5);
        assert!(m.coalesce_efficiency(PackTarget::Device, 64) == 1.0);
        // one-shot knee at 128 B
        assert!(m.coalesce_efficiency(PackTarget::MappedHost, 64) == 0.5);
        assert!(m.coalesce_efficiency(PackTarget::MappedHost, 128) == 1.0);
    }

    #[test]
    fn small_blocks_hurt_bandwidth() {
        let m = m();
        let t4 = m.pack_kernel_time(PackDir::Pack, PackTarget::Device, 1 << 20, 4, 4);
        let t512 = m.pack_kernel_time(PackDir::Pack, PackTarget::Device, 1 << 20, 512, 4);
        assert!(t4 > t512 * 4, "t4={t4}, t512={t512}");
    }

    #[test]
    fn larger_objects_get_better_utilization() {
        let m = m();
        let small = m.utilization(1 << 10);
        let big = m.utilization(16 << 20);
        assert!(small < 0.01);
        assert!(big > 0.98);
    }

    #[test]
    fn kernel_time_has_floor() {
        let m = m();
        assert_eq!(
            m.pack_kernel_time(PackDir::Pack, PackTarget::Device, 0, 0, 1),
            m.kernel_min_exec
        );
        assert_eq!(
            m.pack_kernel_time(PackDir::Pack, PackTarget::Device, 64, 64, 8),
            m.kernel_min_exec
        );
    }

    #[test]
    fn word_efficiency_monotone() {
        let m = m();
        let ws: Vec<f64> = [1, 2, 4, 8, 16]
            .iter()
            .map(|&w| m.word_efficiency(w))
            .collect();
        for pair in ws.windows(2) {
            assert!(pair[0] <= pair[1]);
        }
        assert_eq!(m.word_efficiency(8), 1.0);
    }

    #[test]
    fn strided_dma_pays_per_row() {
        let m = m();
        let linear = m.copy_engine_time(CopyKind::D2H, 1 << 20);
        let strided = m.copy_engine_time_2d(CopyKind::D2H, 4, 262_144);
        assert!(strided > linear * 1_5 / 10, "rows must cost extra");
        assert!(strided > linear);
    }

    #[test]
    fn extra_dimensions_cost_throughput() {
        let m = m();
        let t3 = m.pack_kernel_time_dims(PackDir::Pack, PackTarget::Device, 1 << 20, 64, 8, 3);
        let t4 = m.pack_kernel_time_dims(PackDir::Pack, PackTarget::Device, 1 << 20, 64, 8, 4);
        let t6 = m.pack_kernel_time_dims(PackDir::Pack, PackTarget::Device, 1 << 20, 64, 8, 6);
        assert!(t4 > t3, "4-D must be slower than 3-D");
        assert!(t6 > t4, "more outer loops, more cost");
        // and ranks ≤ 3 are all priced identically (hardware grid covers them)
        let t1 = m.pack_kernel_time_dims(PackDir::Pack, PackTarget::Device, 1 << 20, 64, 8, 1);
        assert_eq!(t1, t3);
        // the 3-arg wrapper is the 3-D price
        assert_eq!(
            m.pack_kernel_time(PackDir::Pack, PackTarget::Device, 1 << 20, 64, 8),
            t3
        );
    }

    #[test]
    fn workstation_preset_is_uniformly_slower_hardware() {
        let summit = GpuCostModel::summit_v100();
        let ws = GpuCostModel::workstation_gtx1070();
        assert!(ws.device_pack_peak_bpns < summit.device_pack_peak_bpns);
        assert!(ws.oneshot_pack_peak_bpns < summit.oneshot_pack_peak_bpns);
        assert!(ws.h2d_bpns < summit.h2d_bpns);
        // but the x86 driver stack has lower call overheads
        assert!(ws.memcpy_async_overhead < summit.memcpy_async_overhead);
        assert!(ws.kernel_launch_overhead < summit.kernel_launch_overhead);
    }

    #[test]
    fn effective_bandwidth_includes_overheads() {
        let m = m();
        // A tiny pack is dominated by launch+sync, so effective bw is far
        // below peak.
        let eff = m.pack_effective_bpns(PackDir::Pack, PackTarget::Device, 64, 64, 8);
        assert!(eff < 0.01, "eff = {eff}");
    }
}
