//! Error type for the simulated GPU runtime.
//!
//! These mirror the failure classes a real CUDA program hits: invalid
//! pointers, out-of-bounds accesses, launch-geometry violations, and — the
//! one the simulator is strict about where real hardware is merely
//! crash-prone — device code touching memory the device cannot see.

use std::fmt;

use crate::memory::MemSpace;

/// Errors raised by the simulated GPU runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GpuError {
    /// The referenced allocation does not exist (never allocated, or freed).
    InvalidPointer {
        /// Numeric id of the allocation handle.
        alloc: u64,
    },
    /// An access ran past the end of its allocation.
    OutOfBounds {
        /// Numeric id of the allocation handle.
        alloc: u64,
        /// First byte of the attempted access, relative to the allocation.
        offset: usize,
        /// Length of the attempted access.
        len: usize,
        /// Size of the allocation.
        size: usize,
    },
    /// Device code (a kernel, or the device side of a copy) touched memory
    /// in a space the device cannot address (pageable host memory).
    NotDeviceAccessible {
        /// The space that was illegally accessed.
        space: MemSpace,
    },
    /// Host code touched device memory directly without a copy.
    NotHostAccessible,
    /// Kernel launch geometry violates device limits.
    InvalidLaunch {
        /// Human-readable description of the violated limit.
        reason: String,
    },
    /// Allocation request exceeded remaining device memory.
    OutOfMemory {
        /// Bytes requested.
        requested: usize,
        /// Bytes still available.
        available: usize,
    },
    /// An operation required two distinct buffers but both arguments alias
    /// the same allocation (the simulator does not model intra-allocation
    /// overlapping copies).
    OverlappingBuffers,
    /// A kernel body reported a failure.
    KernelFault {
        /// Kernel name as given at launch.
        kernel: String,
        /// Underlying error.
        source: Box<GpuError>,
    },
    /// An asynchronous stream operation (kernel launch or copy) failed
    /// transiently — the class of driver/stream hiccup the fault injector
    /// models. Real CUDA surfaces these as sticky stream errors; the
    /// simulator keeps them per-operation so callers can retry or degrade.
    StreamFault {
        /// The operation that failed (kernel name or copy primitive).
        op: String,
    },
}

impl GpuError {
    /// Is this error *transient* — a resource-pressure or stream condition
    /// that a caller may reasonably retry or degrade around — rather than
    /// a program error?
    ///
    /// Transient: [`GpuError::OutOfMemory`] (device pressure can subside
    /// when staging buffers are returned, and a smaller/host-side path can
    /// be chosen instead) and [`GpuError::StreamFault`] (injected async
    /// hiccups). A [`GpuError::KernelFault`] inherits the classification
    /// of its source. Everything else — bad pointers, out-of-bounds,
    /// space violations, bad launch geometry — is a program error and
    /// must propagate.
    #[must_use]
    pub fn is_transient(&self) -> bool {
        match self {
            GpuError::OutOfMemory { .. } | GpuError::StreamFault { .. } => true,
            GpuError::KernelFault { source, .. } => source.is_transient(),
            _ => false,
        }
    }
}

impl fmt::Display for GpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpuError::InvalidPointer { alloc } => {
                write!(f, "invalid pointer: allocation #{alloc} does not exist")
            }
            GpuError::OutOfBounds {
                alloc,
                offset,
                len,
                size,
            } => write!(
                f,
                "out-of-bounds access: [{offset}, {}) in allocation #{alloc} of {size} bytes",
                offset + len
            ),
            GpuError::NotDeviceAccessible { space } => {
                write!(
                    f,
                    "device access to non-device-accessible memory ({space:?})"
                )
            }
            GpuError::NotHostAccessible => {
                write!(f, "host access to device memory without a copy")
            }
            GpuError::InvalidLaunch { reason } => write!(f, "invalid kernel launch: {reason}"),
            GpuError::OutOfMemory {
                requested,
                available,
            } => write!(
                f,
                "device out of memory: requested {requested} bytes, {available} available"
            ),
            GpuError::OverlappingBuffers => {
                write!(f, "source and destination alias the same allocation")
            }
            GpuError::KernelFault { kernel, source } => {
                write!(f, "fault in kernel `{kernel}`: {source}")
            }
            GpuError::StreamFault { op } => {
                write!(f, "transient stream fault in `{op}`")
            }
        }
    }
}

impl std::error::Error for GpuError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GpuError::KernelFault { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Result alias for GPU-runtime operations.
pub type GpuResult<T> = Result<T, GpuError>;
