//! Virtual time for the simulation.
//!
//! All performance results in this repository are expressed in *virtual*
//! nanoseconds computed by analytic cost models, never wall-clock time. This
//! keeps every experiment deterministic and machine-independent.
//!
//! [`SimTime`] is a point on (or a span of) the virtual timeline with
//! picosecond resolution; picoseconds are needed because individual
//! operations can be priced from bandwidths like 212 GB/s where a 4-byte
//! element costs ~19 ps. [`SimClock`] is the per-agent (per MPI rank, per
//! CPU thread) monotonic clock that operations advance.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

/// A duration or instant on the virtual timeline, in picoseconds.
///
/// `SimTime` is used both as a point in time (e.g. "the stream is busy until
/// t") and as a span (e.g. "this memcpy takes 11 µs"); the arithmetic is the
/// same for both and the context makes the meaning clear.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime {
    ps: u64,
}

impl SimTime {
    /// The zero time / empty duration.
    pub const ZERO: SimTime = SimTime { ps: 0 };

    /// Construct from picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimTime { ps }
    }

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime { ps: ns * 1_000 }
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimTime { ps: us * 1_000_000 }
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimTime {
            ps: ms * 1_000_000_000,
        }
    }

    /// Construct from a floating-point nanosecond quantity (rounded to the
    /// nearest picosecond, saturating at zero for negative inputs).
    #[inline]
    pub fn from_ns_f64(ns: f64) -> Self {
        let ps = (ns * 1e3).round();
        SimTime {
            ps: if ps <= 0.0 { 0 } else { ps as u64 },
        }
    }

    /// Construct from a floating-point microsecond quantity.
    #[inline]
    pub fn from_us_f64(us: f64) -> Self {
        Self::from_ns_f64(us * 1e3)
    }

    /// Construct from a floating-point second quantity.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        Self::from_ns_f64(s * 1e9)
    }

    /// Raw picoseconds.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.ps
    }

    /// As floating-point nanoseconds.
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.ps as f64 / 1e3
    }

    /// As floating-point microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.ps as f64 / 1e6
    }

    /// As floating-point seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.ps as f64 / 1e12
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.ps >= other.ps {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self.ps <= other.ps {
            self
        } else {
            other
        }
    }

    /// Saturating subtraction (`self - other`, clamped at zero).
    #[inline]
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime {
            ps: self.ps.saturating_sub(other.ps),
        }
    }

    /// True if this is the zero duration.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.ps == 0
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime {
            ps: self
                .ps
                .checked_add(rhs.ps)
                .expect("SimTime overflow: virtual timeline exceeded ~213 days"),
        }
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime {
            ps: self
                .ps
                .checked_sub(rhs.ps)
                .expect("SimTime underflow: subtracted a later instant from an earlier one"),
        }
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: u64) -> SimTime {
        SimTime {
            ps: self.ps.checked_mul(rhs).expect("SimTime overflow in mul"),
        }
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: u64) -> SimTime {
        SimTime { ps: self.ps / rhs }
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    /// Human-readable rendering with an auto-selected unit.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.as_ns_f64();
        if ns < 1e3 {
            write!(f, "{ns:.1} ns")
        } else if ns < 1e6 {
            write!(f, "{:.2} us", ns / 1e3)
        } else if ns < 1e9 {
            write!(f, "{:.3} ms", ns / 1e6)
        } else {
            write!(f, "{:.4} s", ns / 1e9)
        }
    }
}

/// A monotonic per-agent virtual clock.
///
/// Each MPI rank (and each standalone benchmark context) owns exactly one
/// `SimClock`. Synchronous work advances it with [`SimClock::advance`];
/// completion of asynchronous work is folded in with
/// [`SimClock::advance_to`], which never moves the clock backwards
/// (Lamport-style).
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now: SimTime,
}

impl SimClock {
    /// A clock starting at time zero.
    pub fn new() -> Self {
        SimClock { now: SimTime::ZERO }
    }

    /// The current virtual instant.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advance by a duration (synchronous work on this agent).
    #[inline]
    pub fn advance(&mut self, dt: SimTime) {
        self.now += dt;
    }

    /// Move the clock forward to `t` if `t` is in the future; otherwise do
    /// nothing. Returns the amount of time the clock actually moved.
    #[inline]
    pub fn advance_to(&mut self, t: SimTime) -> SimTime {
        if t > self.now {
            let waited = t - self.now;
            self.now = t;
            waited
        } else {
            SimTime::ZERO
        }
    }

    /// Reset to time zero (used between independent benchmark repetitions).
    pub fn reset(&mut self) {
        self.now = SimTime::ZERO;
    }
}

/// A simple stopwatch over a [`SimClock`], for timing phases in examples and
/// benchmark harnesses.
#[derive(Debug, Clone, Copy)]
pub struct SimStopwatch {
    start: SimTime,
}

impl SimStopwatch {
    /// Start timing at the clock's current instant.
    pub fn start(clock: &SimClock) -> Self {
        SimStopwatch { start: clock.now() }
    }

    /// Elapsed virtual time since `start`.
    pub fn elapsed(&self, clock: &SimClock) -> SimTime {
        clock.now() - self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_ns(1), SimTime::from_ps(1_000));
        assert_eq!(SimTime::from_us(1), SimTime::from_ns(1_000));
        assert_eq!(SimTime::from_ms(1), SimTime::from_us(1_000));
        assert_eq!(SimTime::from_ns_f64(2.5), SimTime::from_ps(2_500));
        assert_eq!(SimTime::from_us_f64(11.0), SimTime::from_us(11));
        assert_eq!(SimTime::from_secs_f64(1e-9), SimTime::from_ns(1));
    }

    #[test]
    fn negative_float_clamps_to_zero() {
        assert_eq!(SimTime::from_ns_f64(-5.0), SimTime::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_us(10);
        let b = SimTime::from_us(4);
        assert_eq!(a + b, SimTime::from_us(14));
        assert_eq!(a - b, SimTime::from_us(6));
        assert_eq!(b * 3, SimTime::from_us(12));
        assert_eq!(a / 2, SimTime::from_us(5));
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = SimTime::from_us(1) - SimTime::from_us(2);
    }

    #[test]
    fn sum_of_spans() {
        let total: SimTime = (1..=4).map(SimTime::from_us).sum();
        assert_eq!(total, SimTime::from_us(10));
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut c = SimClock::new();
        c.advance(SimTime::from_us(5));
        assert_eq!(c.now(), SimTime::from_us(5));
        // advance_to in the past is a no-op
        assert_eq!(c.advance_to(SimTime::from_us(3)), SimTime::ZERO);
        assert_eq!(c.now(), SimTime::from_us(5));
        // advance_to in the future waits
        assert_eq!(c.advance_to(SimTime::from_us(9)), SimTime::from_us(4));
        assert_eq!(c.now(), SimTime::from_us(9));
    }

    #[test]
    fn stopwatch_measures_elapsed() {
        let mut c = SimClock::new();
        c.advance(SimTime::from_us(2));
        let sw = SimStopwatch::start(&c);
        c.advance(SimTime::from_us(7));
        assert_eq!(sw.elapsed(&c), SimTime::from_us(7));
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", SimTime::from_ns(500)), "500.0 ns");
        assert_eq!(format!("{}", SimTime::from_us(11)), "11.00 us");
        assert_eq!(format!("{}", SimTime::from_ms(3)), "3.000 ms");
        assert_eq!(format!("{}", SimTime::from_secs_f64(2.0)), "2.0000 s");
    }
}
