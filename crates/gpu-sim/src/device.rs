//! Simulated device descriptions.
//!
//! A [`DeviceProps`] captures the architectural limits and headline rates of
//! one GPU model. Two presets match the paper's evaluation platforms
//! (Table 1): an NVIDIA V100 (OLCF Summit node) and a GTX 1070 (the
//! single-node openmpi/mvapich workstation).

use serde::{Deserialize, Serialize};

/// Architectural description of a simulated GPU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceProps {
    /// Marketing name, e.g. `"Tesla V100-SXM2-16GB"`.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// Threads per warp (32 on all NVIDIA parts).
    pub warp_size: u32,
    /// Maximum threads per block (1024 on all recent parts).
    pub max_threads_per_block: u32,
    /// Maximum block dimension in x, y, z.
    pub max_block_dim: [u32; 3],
    /// Maximum grid dimension in x, y, z.
    pub max_grid_dim: [u32; 3],
    /// Total device (global) memory in bytes.
    pub global_mem_bytes: usize,
    /// Peak global-memory bandwidth, bytes per nanosecond (== GB/s × 1e9/1e9,
    /// i.e. numerically GB/s with GB = 1e9).
    pub mem_bandwidth_bpns: f64,
    /// Host link (PCIe / NVLink) bandwidth per direction, bytes per ns.
    pub host_link_bpns: f64,
    /// Size of one global-memory transaction in bytes (coalescing granule).
    pub transaction_bytes: usize,
}

impl DeviceProps {
    /// NVIDIA Tesla V100 as deployed in an OLCF Summit node (NVLink2 to the
    /// POWER9 host: 50 GB/s per direction per GPU; 900 GB/s HBM2).
    pub fn v100() -> Self {
        DeviceProps {
            name: "Tesla V100-SXM2-16GB".to_string(),
            sm_count: 80,
            warp_size: 32,
            max_threads_per_block: 1024,
            max_block_dim: [1024, 1024, 64],
            max_grid_dim: [2_147_483_647, 65_535, 65_535],
            global_mem_bytes: 16 * (1 << 30),
            mem_bandwidth_bpns: 900.0,
            host_link_bpns: 50.0,
            transaction_bytes: 32,
        }
    }

    /// NVIDIA GTX 1070 (the paper's openmpi/mvapich workstation platform;
    /// PCIe 3.0 x16 host link, GDDR5).
    pub fn gtx1070() -> Self {
        DeviceProps {
            name: "GeForce GTX 1070".to_string(),
            sm_count: 15,
            warp_size: 32,
            max_threads_per_block: 1024,
            max_block_dim: [1024, 1024, 64],
            max_grid_dim: [2_147_483_647, 65_535, 65_535],
            global_mem_bytes: 8 * (1 << 30),
            mem_bandwidth_bpns: 256.0,
            host_link_bpns: 12.0,
            transaction_bytes: 32,
        }
    }

    /// Validate a launch geometry against this device's limits.
    ///
    /// Returns a human-readable reason on failure, mirroring
    /// `cudaErrorInvalidConfiguration`.
    pub fn validate_launch(
        &self,
        grid: crate::kernel::Dim3,
        block: crate::kernel::Dim3,
    ) -> Result<(), String> {
        let threads = block.x as u64 * block.y as u64 * block.z as u64;
        if threads == 0 {
            return Err("block has zero threads".to_string());
        }
        if threads > self.max_threads_per_block as u64 {
            return Err(format!(
                "block of {threads} threads exceeds limit of {}",
                self.max_threads_per_block
            ));
        }
        for (i, (&d, &lim)) in [block.x, block.y, block.z]
            .iter()
            .zip(self.max_block_dim.iter())
            .enumerate()
        {
            if d > lim {
                return Err(format!("block dim {i} = {d} exceeds limit {lim}"));
            }
        }
        if grid.x == 0 || grid.y == 0 || grid.z == 0 {
            return Err("grid has a zero dimension".to_string());
        }
        for (i, (&d, &lim)) in [grid.x, grid.y, grid.z]
            .iter()
            .zip(self.max_grid_dim.iter())
            .enumerate()
        {
            if d > lim {
                return Err(format!("grid dim {i} = {d} exceeds limit {lim}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::Dim3;

    #[test]
    fn presets_have_sane_limits() {
        for d in [DeviceProps::v100(), DeviceProps::gtx1070()] {
            assert_eq!(d.warp_size, 32);
            assert_eq!(d.max_threads_per_block, 1024);
            assert!(d.mem_bandwidth_bpns > d.host_link_bpns);
            assert_eq!(d.transaction_bytes, 32);
        }
    }

    #[test]
    fn launch_validation_accepts_typical_geometry() {
        let d = DeviceProps::v100();
        assert!(d
            .validate_launch(Dim3::new(1024, 13, 47), Dim3::new(256, 4, 1))
            .is_ok());
    }

    #[test]
    fn launch_validation_rejects_oversized_block() {
        let d = DeviceProps::v100();
        let err = d
            .validate_launch(Dim3::xyz(1, 1, 1), Dim3::new(1024, 2, 1))
            .unwrap_err();
        assert!(err.contains("2048 threads"), "{err}");
    }

    #[test]
    fn launch_validation_rejects_zero_dims() {
        let d = DeviceProps::v100();
        assert!(d
            .validate_launch(Dim3::xyz(0, 1, 1), Dim3::xyz(32, 1, 1))
            .is_err());
        assert!(d
            .validate_launch(Dim3::xyz(1, 1, 1), Dim3::xyz(0, 1, 1))
            .is_err());
    }

    #[test]
    fn launch_validation_rejects_oversized_block_z() {
        let d = DeviceProps::v100();
        // z block dimension limit is 64
        assert!(d
            .validate_launch(Dim3::xyz(1, 1, 1), Dim3::new(1, 1, 128))
            .is_err());
    }

    #[test]
    fn launch_validation_rejects_oversized_grid_y() {
        let d = DeviceProps::v100();
        assert!(d
            .validate_launch(Dim3::new(1, 70_000, 1), Dim3::new(32, 1, 1))
            .is_err());
    }
}
