//! Deterministic fault injection for the simulated GPU runtime.
//!
//! A [`GpuFaultInjector`] decides, per call site, whether a given GPU
//! operation fails. Decisions are pure functions of a configured seed, the
//! site, and that site's call ordinal — no wall clock and no global RNG —
//! so a fault schedule replays identically run after run.
//!
//! The injector is installed on a [`crate::Memory`] (and therefore shared
//! by every clone of the owning [`crate::GpuContext`] and every
//! [`crate::Stream`] bound to it). When no injector is installed, each
//! hook is a single `Option` check and the simulator behaves exactly as it
//! did before fault injection existed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// SplitMix64: mix `x` into a uniformly distributed 64-bit value.
///
/// Small, seedable and stateless — the deterministic coin the injector
/// flips instead of a global RNG.
#[inline]
#[must_use]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Map a 64-bit hash to a uniform `f64` in `[0, 1)`.
#[inline]
fn unit_f64(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// When one injection site fires: a per-call probability, an explicit list
/// of scripted call ordinals, or both.
///
/// Serializable so higher layers (the chaos engine) can persist and replay
/// minimized fault plans byte-for-byte.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SiteSpec {
    /// Probability in `[0, 1]` that any given call at this site fails.
    #[serde(default)]
    pub probability: f64,
    /// Call ordinals (0-based, counted per site) that always fail,
    /// independent of `probability`.
    #[serde(default)]
    pub at_calls: Vec<u64>,
}

impl SiteSpec {
    /// A site that never fires (the default).
    #[must_use]
    pub fn never() -> Self {
        SiteSpec::default()
    }

    /// Fire on each call with probability `p`.
    #[must_use]
    pub fn with_probability(p: f64) -> Self {
        SiteSpec {
            probability: p,
            at_calls: Vec::new(),
        }
    }

    /// Fire exactly on the given 0-based call ordinals.
    #[must_use]
    pub fn at(calls: &[u64]) -> Self {
        SiteSpec {
            probability: 0.0,
            at_calls: calls.to_vec(),
        }
    }

    /// Does this spec ever fire?
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.probability > 0.0 || !self.at_calls.is_empty()
    }

    /// Deterministic decision for call ordinal `n` under `seed` and the
    /// site's `salt`. Public so higher layers (the MPI fault plan) flip
    /// the same coin for their own sites.
    pub fn decide(&self, seed: u64, salt: u64, n: u64) -> bool {
        if self.at_calls.contains(&n) {
            return true;
        }
        self.probability > 0.0
            && unit_f64(splitmix64(seed ^ salt ^ splitmix64(n))) < self.probability
    }
}

/// The GPU operations a fault can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GpuFaultSite {
    /// Device allocation: fires as [`crate::GpuError::OutOfMemory`].
    AllocOom,
    /// Kernel launch: fires as [`crate::GpuError::StreamFault`].
    KernelFault,
    /// Async copy (1-D, 2-D or 3-D): fires as
    /// [`crate::GpuError::StreamFault`].
    CopyFault,
}

/// Full fault configuration for one simulated GPU.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GpuFaultSpec {
    /// Seed mixed into every probabilistic decision.
    pub seed: u64,
    /// Device-allocation out-of-memory site.
    pub alloc_oom: SiteSpec,
    /// Kernel-launch failure site.
    pub kernel_fault: SiteSpec,
    /// Async-copy failure site.
    pub copy_fault: SiteSpec,
}

impl GpuFaultSpec {
    /// Does any site ever fire?
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.alloc_oom.is_active() || self.kernel_fault.is_active() || self.copy_fault.is_active()
    }
}

/// Per-device injector: a [`GpuFaultSpec`] plus per-site call counters.
///
/// Shared via `Arc` between the memory system and the streams of one
/// simulated device. Counters are atomics only because [`crate::Memory`]
/// sits behind a mutex shared across context clones; the simulator drives
/// each rank single-threaded, so call ordinals — and therefore every
/// decision — are deterministic.
#[derive(Debug)]
pub struct GpuFaultInjector {
    spec: GpuFaultSpec,
    calls: [AtomicU64; 3],
    injected: [AtomicU64; 3],
}

impl GpuFaultInjector {
    /// Per-site hash salts so the same ordinal at different sites draws
    /// independent coins.
    const SALTS: [u64; 3] = [
        0x616c_6c6f_635f_6f6d, // "alloc_om"
        0x6b65_726e_5f66_6c74, // "kern_flt"
        0x636f_7079_5f66_6c74, // "copy_flt"
    ];

    /// Build a shareable injector from a spec.
    #[must_use]
    pub fn new(spec: GpuFaultSpec) -> Arc<Self> {
        Arc::new(GpuFaultInjector {
            spec,
            calls: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
            injected: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
        })
    }

    fn idx(site: GpuFaultSite) -> usize {
        match site {
            GpuFaultSite::AllocOom => 0,
            GpuFaultSite::KernelFault => 1,
            GpuFaultSite::CopyFault => 2,
        }
    }

    fn site_spec(&self, site: GpuFaultSite) -> &SiteSpec {
        match site {
            GpuFaultSite::AllocOom => &self.spec.alloc_oom,
            GpuFaultSite::KernelFault => &self.spec.kernel_fault,
            GpuFaultSite::CopyFault => &self.spec.copy_fault,
        }
    }

    /// Record one call at `site` and decide whether it fails.
    ///
    /// Inactive sites return `false` without consuming an ordinal, so
    /// enabling one site does not shift another site's schedule.
    pub fn should_fail(&self, site: GpuFaultSite) -> bool {
        let spec = self.site_spec(site);
        if !spec.is_active() {
            return false;
        }
        let i = Self::idx(site);
        let n = self.calls[i].fetch_add(1, Ordering::Relaxed);
        let fire = spec.decide(self.spec.seed, Self::SALTS[i], n);
        if fire {
            self.injected[i].fetch_add(1, Ordering::Relaxed);
        }
        fire
    }

    /// Calls observed at `site` so far (counted only while the site is
    /// active).
    pub fn calls(&self, site: GpuFaultSite) -> u64 {
        self.calls[Self::idx(site)].load(Ordering::Relaxed)
    }

    /// Faults injected at `site` so far.
    pub fn injected(&self, site: GpuFaultSite) -> u64 {
        self.injected[Self::idx(site)].load(Ordering::Relaxed)
    }

    /// The spec this injector runs.
    pub fn spec(&self) -> &GpuFaultSpec {
        &self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_mixes() {
        assert_eq!(splitmix64(42), splitmix64(42));
        assert_ne!(splitmix64(42), splitmix64(43));
    }

    #[test]
    fn scripted_ordinals_fire_exactly() {
        let inj = GpuFaultInjector::new(GpuFaultSpec {
            seed: 7,
            alloc_oom: SiteSpec::at(&[1, 3]),
            ..GpuFaultSpec::default()
        });
        let fired: Vec<bool> = (0..5)
            .map(|_| inj.should_fail(GpuFaultSite::AllocOom))
            .collect();
        assert_eq!(fired, vec![false, true, false, true, false]);
        assert_eq!(inj.injected(GpuFaultSite::AllocOom), 2);
        assert_eq!(inj.calls(GpuFaultSite::AllocOom), 5);
    }

    #[test]
    fn probability_extremes() {
        let always = GpuFaultInjector::new(GpuFaultSpec {
            seed: 1,
            kernel_fault: SiteSpec::with_probability(1.0),
            ..GpuFaultSpec::default()
        });
        let never = GpuFaultInjector::new(GpuFaultSpec {
            seed: 1,
            kernel_fault: SiteSpec::with_probability(0.0),
            ..GpuFaultSpec::default()
        });
        for _ in 0..32 {
            assert!(always.should_fail(GpuFaultSite::KernelFault));
            assert!(!never.should_fail(GpuFaultSite::KernelFault));
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        let spec = GpuFaultSpec {
            seed: 20260805,
            copy_fault: SiteSpec::with_probability(0.3),
            ..GpuFaultSpec::default()
        };
        let a = GpuFaultInjector::new(spec.clone());
        let b = GpuFaultInjector::new(spec);
        let sa: Vec<bool> = (0..64)
            .map(|_| a.should_fail(GpuFaultSite::CopyFault))
            .collect();
        let sb: Vec<bool> = (0..64)
            .map(|_| b.should_fail(GpuFaultSite::CopyFault))
            .collect();
        assert_eq!(sa, sb);
        assert!(sa.iter().any(|&f| f), "p=0.3 over 64 draws should fire");
        assert!(!sa.iter().all(|&f| f), "p=0.3 should not always fire");
    }

    #[test]
    fn different_sites_draw_independent_coins() {
        let spec = GpuFaultSpec {
            seed: 99,
            alloc_oom: SiteSpec::with_probability(0.5),
            kernel_fault: SiteSpec::with_probability(0.5),
            ..GpuFaultSpec::default()
        };
        let inj = GpuFaultInjector::new(spec);
        let a: Vec<bool> = (0..64)
            .map(|_| inj.should_fail(GpuFaultSite::AllocOom))
            .collect();
        let k: Vec<bool> = (0..64)
            .map(|_| inj.should_fail(GpuFaultSite::KernelFault))
            .collect();
        assert_ne!(a, k);
    }

    #[test]
    fn inactive_sites_do_not_count_calls() {
        let inj = GpuFaultInjector::new(GpuFaultSpec::default());
        assert!(!inj.should_fail(GpuFaultSite::AllocOom));
        assert_eq!(inj.calls(GpuFaultSite::AllocOom), 0);
    }
}
