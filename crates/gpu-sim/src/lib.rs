//! # gpu-sim — a functional, virtual-time simulated CUDA runtime
//!
//! This crate is the GPU substrate for the TEMPI reproduction. It provides
//! a CUDA-shaped API — devices, address-spaced memory, streams, events,
//! async copies (including strided 2D DMA), and kernel launches — with two
//! properties the reproduction needs:
//!
//! 1. **Functional fidelity.** Allocations are real byte buffers; copies and
//!    kernel bodies move real bytes, and the space rules of CUDA (device
//!    code cannot touch pageable host memory; host code cannot touch device
//!    memory) are *enforced* rather than merely crash-prone.
//! 2. **Virtual timing.** Every operation advances a deterministic virtual
//!    clock according to an analytic cost model ([`cost::GpuCostModel`])
//!    calibrated to the paper's published Summit measurements (11 µs
//!    memcpy+sync floor, 4.5 µs kernel launch, 212/202 GB/s device
//!    pack/unpack peaks, 32.5/39 GB/s one-shot peaks, coalescing knees at
//!    32 B / 128 B).
//!
//! See `DESIGN.md` at the repository root for how this substitutes for the
//! paper's physical V100/GTX-1070 hardware.
//!
//! ## Quick example
//!
//! ```
//! use gpu_sim::{GpuContext, DeviceProps, Stream, GpuCostModel, SimClock};
//!
//! let ctx = GpuContext::new(DeviceProps::v100());
//! let mut stream = Stream::new(ctx.clone(), GpuCostModel::summit_v100());
//! let mut clock = SimClock::new();
//!
//! let host = ctx.pinned_alloc(1024).unwrap();
//! let dev = ctx.malloc(1024).unwrap();
//! ctx.memory().poke(host, &[7u8; 1024]).unwrap();
//!
//! stream.memcpy(&mut clock, dev, host, 1024).unwrap();
//! assert_eq!(ctx.memory().peek(dev, 1024).unwrap(), vec![7u8; 1024]);
//! // ~11 µs latency floor, exactly as measured on Summit:
//! assert!(clock.now().as_us_f64() >= 11.0);
//! ```

#![warn(missing_docs)]

pub mod clock;
pub mod cost;
pub mod device;
pub mod error;
pub mod fault;
pub mod kernel;
pub mod memory;
pub mod stream;

pub use clock::{SimClock, SimStopwatch, SimTime};
pub use cost::{CopyKind, GpuCostModel, PackDir, PackTarget};
pub use device::DeviceProps;
pub use error::{GpuError, GpuResult};
pub use fault::{GpuFaultInjector, GpuFaultSite, GpuFaultSpec, SiteSpec};
pub use kernel::{div_ceil, next_pow2, Dim3, LaunchConfig};
pub use memory::{GpuContext, GpuPtr, MemSpace, Memory};
pub use stream::{Event, Stream, StreamStats};
pub use tempi_trace::{TraceLevel, Tracer};
