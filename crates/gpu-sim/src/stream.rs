//! Streams: in-order asynchronous execution with virtual timing.
//!
//! A [`Stream`] models one CUDA stream. Submitting work costs the *calling
//! CPU* its API overhead immediately (advancing the caller's [`SimClock`]);
//! the work itself occupies the *GPU timeline*, tracked as the stream's
//! `busy_until` instant. [`Stream::synchronize`] joins the two timelines.
//!
//! The functional side effect of an operation (bytes actually moving) is
//! applied at submission time. This is sound because the simulator executes
//! each rank's program in order — virtual timestamps, not execution order,
//! carry all performance information.

use std::sync::Arc;

use tempi_trace::{Tracer, LANE_GPU};

use crate::clock::{SimClock, SimTime};
use crate::cost::{CopyKind, GpuCostModel};
use crate::error::{GpuError, GpuResult};
use crate::fault::GpuFaultSite;
#[cfg(test)]
use crate::kernel::Dim3;
use crate::kernel::LaunchConfig;
use crate::memory::{GpuContext, GpuPtr, MemSpace, Memory};

/// Cumulative counters of work submitted to a stream, for tests and
/// reporting (e.g. the baseline copy-per-block implementations are verified
/// to issue one memcpy per contiguous block).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Number of `memcpy_async` calls.
    pub memcpys: u64,
    /// Number of strided (2D) DMA copies.
    pub memcpys_2d: u64,
    /// Number of kernel launches.
    pub kernel_launches: u64,
    /// Number of synchronize calls.
    pub syncs: u64,
    /// Total payload bytes moved by copies (not kernels).
    pub copy_bytes: u64,
}

/// A simulated CUDA stream bound to one [`GpuContext`].
pub struct Stream {
    ctx: GpuContext,
    // Shared, not owned: the send hot path hands the model to per-call
    // cost estimators, and an Arc bump must be all that costs.
    cost: Arc<GpuCostModel>,
    busy_until: SimTime,
    stats: StreamStats,
    // Off by default: every submit pays exactly one branch on the tracer.
    tracer: Tracer,
    trace_pid: u32,
}

impl Stream {
    /// Create a stream on `ctx` priced by `cost`.
    pub fn new(ctx: GpuContext, cost: GpuCostModel) -> Self {
        Stream {
            ctx,
            cost: Arc::new(cost),
            busy_until: SimTime::ZERO,
            stats: StreamStats::default(),
            tracer: Tracer::off(),
            trace_pid: 0,
        }
    }

    /// Attach a tracer; submitted work appears as complete events on the
    /// GPU lane of process `pid` (the owning MPI world rank).
    pub fn set_tracer(&mut self, tracer: Tracer, pid: u32) {
        self.tracer = tracer;
        self.trace_pid = pid;
    }

    /// The context this stream submits to.
    pub fn context(&self) -> &GpuContext {
        &self.ctx
    }

    /// The cost model pricing this stream's work.
    pub fn cost_model(&self) -> &GpuCostModel {
        &self.cost
    }

    /// Shared handle to the cost model, for callers that need to keep the
    /// model alive past the stream borrow without copying its tables.
    pub fn cost_model_shared(&self) -> Arc<GpuCostModel> {
        Arc::clone(&self.cost)
    }

    /// Instant at which all currently submitted work completes.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Counters of submitted work.
    pub fn stats(&self) -> StreamStats {
        self.stats
    }

    /// Reset counters (between benchmark repetitions).
    pub fn reset_stats(&mut self) {
        self.stats = StreamStats::default();
    }

    /// Reset the stream's virtual timeline to t = 0. Must accompany a
    /// [`SimClock::reset`] of the owning agent's clock — otherwise the
    /// next synchronize waits on a completion instant from the previous
    /// timeline.
    pub fn reset_timeline(&mut self) {
        self.busy_until = SimTime::ZERO;
    }

    fn enqueue(&mut self, clock: &SimClock, gpu_time: SimTime) -> SimTime {
        let start = self.busy_until.max(clock.now());
        self.busy_until = start + gpu_time;
        start
    }

    /// Record an enqueued operation as a complete event on the GPU lane.
    /// Start and duration are both known at submit time (the stream model
    /// computes them), so the GPU timeline traces as `X` events.
    #[inline]
    fn trace_gpu(
        &self,
        name: &str,
        start: SimTime,
        dur: SimTime,
        args: impl FnOnce() -> tempi_trace::Args,
    ) {
        self.tracer.complete(
            self.trace_pid,
            LANE_GPU,
            "gpu",
            name,
            start.as_ps(),
            dur.as_ps(),
            args,
        );
    }

    /// Fault-injection check for an async stream operation, run under the
    /// memory lock the caller already holds. Like a real failed submission,
    /// an injected fault leaves the clock, the stream timeline and the
    /// stats untouched.
    fn injected_fault(mem: &Memory, site: GpuFaultSite, op: &str) -> GpuResult<()> {
        if let Some(f) = mem.fault_injector() {
            if f.should_fail(site) {
                return Err(GpuError::StreamFault { op: op.to_string() });
            }
        }
        Ok(())
    }

    /// `cudaMemcpyAsync`: copy `len` bytes from `src` to `dst`, inferring
    /// the transfer kind from the endpoint address spaces.
    ///
    /// Costs the caller the async-call overhead now and occupies the GPU
    /// copy engine for the modeled transfer duration. Validates the same
    /// things CUDA does: bounds, liveness, and that a D2D copy does not
    /// involve pageable memory on its device-pointer side.
    pub fn memcpy_async(
        &mut self,
        clock: &mut SimClock,
        dst: GpuPtr,
        src: GpuPtr,
        len: usize,
    ) -> GpuResult<CopyKind> {
        let kind = {
            let mut mem = self.ctx.memory();
            let d_space = mem.space_of(dst)?;
            let s_space = mem.space_of(src)?;
            Self::injected_fault(&mem, GpuFaultSite::CopyFault, "memcpy_async")?;
            mem.raw_copy(dst, src, len)?;
            CopyKind::infer(d_space, s_space)
        };
        clock.advance(self.cost.memcpy_async_overhead);
        let dur = self.cost.copy_engine_time(kind, len);
        let start = self.enqueue(clock, dur);
        self.trace_gpu("memcpy", start, dur, || {
            vec![("kind", format!("{kind:?}").into()), ("bytes", len.into())]
        });
        self.stats.memcpys += 1;
        self.stats.copy_bytes += len as u64;
        Ok(kind)
    }

    /// `cudaMemcpy2DAsync`: copy a `width × height` region between two
    /// pitched layouts. The DMA engine handles the stride, paying a per-row
    /// overhead — the packing strategy of Wang et al. and the paper's
    /// future-work DMA path.
    #[allow(clippy::too_many_arguments)] // mirrors the CUDA signature
    pub fn memcpy_2d_async(
        &mut self,
        clock: &mut SimClock,
        dst: GpuPtr,
        dpitch: usize,
        src: GpuPtr,
        spitch: usize,
        width: usize,
        height: usize,
    ) -> GpuResult<CopyKind> {
        if width > dpitch || width > spitch {
            return Err(GpuError::InvalidLaunch {
                reason: format!(
                    "memcpy2d width {width} exceeds pitch (dpitch={dpitch}, spitch={spitch})"
                ),
            });
        }
        let kind = {
            let mut mem = self.ctx.memory();
            let d_space = mem.space_of(dst)?;
            let s_space = mem.space_of(src)?;
            Self::injected_fault(&mem, GpuFaultSite::CopyFault, "memcpy_2d_async")?;
            for row in 0..height {
                mem.raw_copy(dst.add(row * dpitch), src.add(row * spitch), width)?;
            }
            CopyKind::infer(d_space, s_space)
        };
        clock.advance(self.cost.memcpy_async_overhead);
        let dur = self.cost.copy_engine_time_2d(kind, width, height);
        let start = self.enqueue(clock, dur);
        self.trace_gpu("memcpy2d", start, dur, || {
            vec![
                ("kind", format!("{kind:?}").into()),
                ("bytes", (width * height).into()),
                ("rows", height.into()),
            ]
        });
        self.stats.memcpys_2d += 1;
        self.stats.copy_bytes += (width * height) as u64;
        Ok(kind)
    }

    /// `cudaMemcpy3DAsync`: copy a `width × height × depth` box between
    /// two pitched 3-D layouts. Pitches are bytes per row; `slice_*` are
    /// bytes per 2-D slice (≥ `pitch × height`).
    #[allow(clippy::too_many_arguments)]
    pub fn memcpy_3d_async(
        &mut self,
        clock: &mut SimClock,
        dst: GpuPtr,
        dpitch: usize,
        dslice: usize,
        src: GpuPtr,
        spitch: usize,
        sslice: usize,
        width: usize,
        height: usize,
        depth: usize,
    ) -> GpuResult<CopyKind> {
        if width > dpitch || width > spitch {
            return Err(GpuError::InvalidLaunch {
                reason: format!(
                    "memcpy3d width {width} exceeds pitch (dpitch={dpitch}, spitch={spitch})"
                ),
            });
        }
        if dpitch * height > dslice || spitch * height > sslice {
            return Err(GpuError::InvalidLaunch {
                reason: "memcpy3d slice pitch smaller than pitch x height".to_string(),
            });
        }
        let kind = {
            let mut mem = self.ctx.memory();
            let d_space = mem.space_of(dst)?;
            let s_space = mem.space_of(src)?;
            Self::injected_fault(&mem, GpuFaultSite::CopyFault, "memcpy_3d_async")?;
            for z in 0..depth {
                for row in 0..height {
                    mem.raw_copy(
                        dst.add(z * dslice + row * dpitch),
                        src.add(z * sslice + row * spitch),
                        width,
                    )?;
                }
            }
            CopyKind::infer(d_space, s_space)
        };
        clock.advance(self.cost.memcpy_async_overhead);
        let dur = self.cost.copy_engine_time_2d(kind, width, height * depth);
        let start = self.enqueue(clock, dur);
        self.trace_gpu("memcpy3d", start, dur, || {
            vec![
                ("kind", format!("{kind:?}").into()),
                ("bytes", (width * height * depth).into()),
                ("rows", (height * depth).into()),
            ]
        });
        self.stats.memcpys_2d += 1;
        self.stats.copy_bytes += (width * height * depth) as u64;
        Ok(kind)
    }

    /// Launch a kernel.
    ///
    /// * `name` — for diagnostics.
    /// * `cfg` — grid/block geometry, validated against the device limits.
    /// * `exec_time` — on-GPU duration, priced by the caller via
    ///   [`GpuCostModel`] (kernel cost depends on access patterns only the
    ///   caller knows).
    /// * `body` — the functional effect; it may only touch device-accessible
    ///   memory through the `dev_*` accessors of [`Memory`].
    ///
    /// Costs the caller the launch overhead and occupies the GPU for
    /// `exec_time`.
    pub fn launch<F>(
        &mut self,
        clock: &mut SimClock,
        name: &str,
        cfg: LaunchConfig,
        exec_time: SimTime,
        body: F,
    ) -> GpuResult<()>
    where
        F: FnOnce(&mut Memory) -> GpuResult<()>,
    {
        self.ctx
            .props()
            .validate_launch(cfg.grid, cfg.block)
            .map_err(|reason| GpuError::InvalidLaunch { reason })?;
        {
            let mut mem = self.ctx.memory();
            Self::injected_fault(&mem, GpuFaultSite::KernelFault, name)?;
            body(&mut mem).map_err(|e| GpuError::KernelFault {
                kernel: name.to_string(),
                source: Box::new(e),
            })?;
        }
        clock.advance(self.cost.kernel_launch_overhead);
        let start = self.enqueue(clock, exec_time);
        self.trace_gpu(name, start, exec_time, || {
            vec![
                ("grid", format!("{:?}", cfg.grid).into()),
                ("block", format!("{:?}", cfg.block).into()),
            ]
        });
        self.stats.kernel_launches += 1;
        Ok(())
    }

    /// `cudaStreamSynchronize`: block the caller until submitted work
    /// completes, then pay the synchronize-return overhead. The overhead is
    /// paid even when the stream is already idle (so an async copy plus a
    /// sync composes to the measured 11 µs floor).
    pub fn synchronize(&mut self, clock: &mut SimClock) {
        clock.advance_to(self.busy_until);
        clock.advance(self.cost.stream_sync_overhead);
        self.stats.syncs += 1;
    }

    /// `cudaStreamQuery`: has all submitted work completed by the caller's
    /// current instant?
    pub fn query(&self, clock: &SimClock) -> bool {
        self.busy_until <= clock.now()
    }

    /// Convenience: synchronous `cudaMemcpy` (async + synchronize).
    pub fn memcpy(
        &mut self,
        clock: &mut SimClock,
        dst: GpuPtr,
        src: GpuPtr,
        len: usize,
    ) -> GpuResult<CopyKind> {
        let kind = self.memcpy_async(clock, dst, src, len)?;
        self.synchronize(clock);
        Ok(kind)
    }

    /// Upload host bytes into any allocation through the copy engine
    /// (models `cudaMemcpyAsync` from an implicit pinned staging source,
    /// then sync). Convenience for tests and workload setup where the
    /// source is a Rust slice rather than simulated memory.
    pub fn upload(&mut self, clock: &mut SimClock, dst: GpuPtr, data: &[u8]) -> GpuResult<()> {
        {
            let mut mem = self.ctx.memory();
            let _ = mem.space_of(dst)?;
            mem.poke(dst, data)?;
        }
        clock.advance(self.cost.memcpy_async_overhead);
        let kind = if dst.space == MemSpace::Device {
            CopyKind::H2D
        } else {
            CopyKind::H2H
        };
        let dur = self.cost.copy_engine_time(kind, data.len());
        let start = self.enqueue(clock, dur);
        self.trace_gpu("upload", start, dur, || vec![("bytes", data.len().into())]);
        self.stats.memcpys += 1;
        self.stats.copy_bytes += data.len() as u64;
        self.synchronize(clock);
        Ok(())
    }

    /// Download bytes from any allocation through the copy engine into a
    /// Rust buffer (symmetric with [`Stream::upload`]).
    pub fn download(
        &mut self,
        clock: &mut SimClock,
        src: GpuPtr,
        len: usize,
    ) -> GpuResult<Vec<u8>> {
        let data = {
            let mem = self.ctx.memory();
            mem.peek(src, len)?
        };
        clock.advance(self.cost.memcpy_async_overhead);
        let kind = if src.space == MemSpace::Device {
            CopyKind::D2H
        } else {
            CopyKind::H2H
        };
        let dur = self.cost.copy_engine_time(kind, len);
        let start = self.enqueue(clock, dur);
        self.trace_gpu("download", start, dur, || vec![("bytes", len.into())]);
        self.stats.memcpys += 1;
        self.stats.copy_bytes += len as u64;
        self.synchronize(clock);
        Ok(data)
    }
}

/// A recorded point on a stream's timeline (`cudaEvent`-style), for
/// measuring GPU-side durations and for cross-stream ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    at: SimTime,
}

impl Event {
    /// Record the stream's completion frontier at the caller's now
    /// (free-function form kept for harness ergonomics; the priced API is
    /// [`Stream::record_event`]).
    pub fn record(stream: &Stream, clock: &SimClock) -> Event {
        Event {
            at: stream.busy_until().max(clock.now()),
        }
    }

    /// The instant the event fires on the virtual timeline.
    pub fn at(&self) -> SimTime {
        self.at
    }

    /// Virtual time between two events (`cudaEventElapsedTime`).
    pub fn elapsed_since(&self, earlier: Event) -> SimTime {
        self.at.saturating_sub(earlier.at)
    }
}

impl Stream {
    /// `cudaEventRecord`: mark the stream's current completion frontier,
    /// paying the event-record CPU overhead.
    pub fn record_event(&mut self, clock: &mut SimClock) -> Event {
        clock.advance(self.cost.event_overhead);
        Event {
            at: self.busy_until.max(clock.now()),
        }
    }

    /// `cudaStreamWaitEvent`: all work submitted to this stream *after*
    /// this call executes only once `event` has fired — the cross-stream
    /// ordering primitive. Costs the caller the event overhead; the wait
    /// itself happens on the GPU timeline, not the CPU.
    pub fn wait_event(&mut self, clock: &mut SimClock, event: Event) {
        clock.advance(self.cost.event_overhead);
        self.busy_until = self.busy_until.max(event.at);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceProps;

    fn setup() -> (GpuContext, Stream, SimClock) {
        let ctx = GpuContext::new(DeviceProps::v100());
        let stream = Stream::new(ctx.clone(), GpuCostModel::summit_v100());
        (ctx, stream, SimClock::new())
    }

    #[test]
    fn memcpy_moves_bytes_and_time() {
        let (ctx, mut s, mut clock) = setup();
        let h = ctx.pinned_alloc(1024).unwrap();
        let d = ctx.malloc(1024).unwrap();
        ctx.memory().poke(h, &[9u8; 1024]).unwrap();

        let kind = s.memcpy(&mut clock, d, h, 1024).unwrap();
        assert_eq!(kind, CopyKind::H2D);
        assert_eq!(ctx.memory().peek(d, 1024).unwrap(), vec![9u8; 1024]);
        // floor (11 µs) + tiny payload
        let us = clock.now().as_us_f64();
        assert!((11.0..12.0).contains(&us), "elapsed {us} µs");
    }

    #[test]
    fn async_copies_pipeline_on_engine() {
        let (ctx, mut s, mut clock) = setup();
        let a = ctx.malloc(1 << 20).unwrap();
        let b = ctx.malloc(1 << 20).unwrap();
        // Submit 4 async copies: CPU pays 4×5 µs; engine runs them back to
        // back. One final sync joins.
        for _ in 0..4 {
            s.memcpy_async(&mut clock, b, a, 1 << 20).unwrap();
        }
        let cpu_after_submit = clock.now().as_us_f64();
        assert!((cpu_after_submit - 20.0).abs() < 0.01);
        s.synchronize(&mut clock);
        // engine: 4 × (1 µs setup + 1 MiB / 700 B/ns ≈ 1.5 µs) ≈ 10 µs
        let total = clock.now().as_us_f64();
        assert!(total >= 25.0, "total {total} µs");
        assert_eq!(s.stats().memcpys, 4);
        assert_eq!(s.stats().copy_bytes, 4 << 20);
    }

    #[test]
    fn sync_on_idle_stream_still_costs_overhead() {
        let (_ctx, mut s, mut clock) = setup();
        s.synchronize(&mut clock);
        assert_eq!(clock.now(), SimTime::from_us(5));
        assert!(s.query(&clock));
    }

    #[test]
    fn launch_validates_geometry() {
        let (_ctx, mut s, mut clock) = setup();
        let bad = LaunchConfig {
            grid: Dim3::ONE,
            block: Dim3::new(2048, 1, 1),
        };
        let err = s
            .launch(&mut clock, "k", bad, SimTime::from_us(1), |_| Ok(()))
            .unwrap_err();
        assert!(matches!(err, GpuError::InvalidLaunch { .. }));
        // failed launch does not advance the clock or stats
        assert_eq!(clock.now(), SimTime::ZERO);
        assert_eq!(s.stats().kernel_launches, 0);
    }

    #[test]
    fn launch_runs_body_and_prices_time() {
        let (ctx, mut s, mut clock) = setup();
        let d = ctx.malloc(64).unwrap();
        let cfg = LaunchConfig {
            grid: Dim3::ONE,
            block: Dim3::new(64, 1, 1),
        };
        s.launch(&mut clock, "fill", cfg, SimTime::from_us(7), |mem| {
            mem.dev_write(d, &[1u8; 64])
        })
        .unwrap();
        assert_eq!(ctx.memory().peek(d, 64).unwrap(), vec![1u8; 64]);
        // launch overhead 4.5 µs on CPU
        assert!((clock.now().as_us_f64() - 4.5).abs() < 1e-9);
        s.synchronize(&mut clock);
        // busy_until = 4.5 + 7 = 11.5; wait to 11.5 then +5 µs sync return
        assert!((clock.now().as_us_f64() - 16.5).abs() < 1e-9);
    }

    #[test]
    fn kernel_fault_reports_kernel_name() {
        let (ctx, mut s, mut clock) = setup();
        let h = ctx.host_alloc(64).unwrap();
        let cfg = LaunchConfig {
            grid: Dim3::ONE,
            block: Dim3::new(32, 1, 1),
        };
        let err = s
            .launch(&mut clock, "bad_kernel", cfg, SimTime::ZERO, |mem| {
                mem.dev_write(h, &[0u8; 4]) // device write to pageable host
            })
            .unwrap_err();
        match err {
            GpuError::KernelFault { kernel, source } => {
                assert_eq!(kernel, "bad_kernel");
                assert!(matches!(*source, GpuError::NotDeviceAccessible { .. }));
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn injected_stream_faults_leave_clock_and_stats_untouched() {
        use crate::fault::{GpuFaultInjector, GpuFaultSpec, SiteSpec};
        let (ctx, mut s, mut clock) = setup();
        let a = ctx.malloc(64).unwrap();
        let b = ctx.malloc(64).unwrap();
        ctx.set_fault_injector(Some(GpuFaultInjector::new(GpuFaultSpec {
            seed: 5,
            kernel_fault: SiteSpec::at(&[0]),
            copy_fault: SiteSpec::at(&[0]),
            ..GpuFaultSpec::default()
        })));
        let cfg = LaunchConfig {
            grid: Dim3::ONE,
            block: Dim3::new(32, 1, 1),
        };
        let err = s
            .launch(&mut clock, "pack", cfg, SimTime::from_us(1), |_| Ok(()))
            .unwrap_err();
        assert_eq!(err, GpuError::StreamFault { op: "pack".into() });
        assert!(err.is_transient());
        let err = s.memcpy_async(&mut clock, b, a, 64).unwrap_err();
        assert_eq!(
            err,
            GpuError::StreamFault {
                op: "memcpy_async".into()
            }
        );
        // injected failures behave like failed submissions: no time, no work
        assert_eq!(clock.now(), SimTime::ZERO);
        assert_eq!(s.stats(), StreamStats::default());
        // the scripted ordinals are spent, so both paths now succeed
        s.launch(&mut clock, "pack", cfg, SimTime::from_us(1), |_| Ok(()))
            .unwrap();
        s.memcpy_async(&mut clock, b, a, 64).unwrap();
    }

    #[test]
    fn memcpy2d_strided_functional_and_timed() {
        let (ctx, mut s, mut clock) = setup();
        let src = ctx.malloc(64).unwrap(); // 8 rows, pitch 8, width 4
        let dst = ctx.malloc(32).unwrap(); // packed: pitch 4
        let pattern: Vec<u8> = (0..64).map(|i| i as u8).collect();
        ctx.memory().poke(src, &pattern).unwrap();
        s.memcpy_2d_async(&mut clock, dst, 4, src, 8, 4, 8).unwrap();
        s.synchronize(&mut clock);
        let got = ctx.memory().peek(dst, 32).unwrap();
        let want: Vec<u8> = (0..8u8).flat_map(|r| r * 8..r * 8 + 4).collect();
        assert_eq!(got, want);
        assert_eq!(s.stats().memcpys_2d, 1);
    }

    #[test]
    fn memcpy2d_rejects_width_wider_than_pitch() {
        let (ctx, mut s, mut clock) = setup();
        let a = ctx.malloc(64).unwrap();
        let b = ctx.malloc(64).unwrap();
        assert!(matches!(
            s.memcpy_2d_async(&mut clock, a, 4, b, 8, 6, 4),
            Err(GpuError::InvalidLaunch { .. })
        ));
    }

    #[test]
    fn memcpy3d_packs_a_box() {
        let (ctx, mut s, mut clock) = setup();
        // source: 4x4x4 allocation (pitch 4, slice 16); box: 2x2x2 at origin
        let src = ctx.malloc(64).unwrap();
        let dst = ctx.malloc(8).unwrap();
        let data: Vec<u8> = (0..64).map(|i| i as u8).collect();
        ctx.memory().poke(src, &data).unwrap();
        s.memcpy_3d_async(&mut clock, dst, 2, 4, src, 4, 16, 2, 2, 2)
            .unwrap();
        s.synchronize(&mut clock);
        assert_eq!(
            ctx.memory().peek(dst, 8).unwrap(),
            vec![0, 1, 4, 5, 16, 17, 20, 21]
        );
    }

    #[test]
    fn memcpy3d_validates_pitches() {
        let (ctx, mut s, mut clock) = setup();
        let a = ctx.malloc(64).unwrap();
        let b = ctx.malloc(64).unwrap();
        assert!(matches!(
            s.memcpy_3d_async(&mut clock, a, 2, 4, b, 4, 16, 3, 2, 2),
            Err(GpuError::InvalidLaunch { .. })
        ));
        assert!(matches!(
            s.memcpy_3d_async(&mut clock, a, 4, 4, b, 4, 16, 4, 2, 2),
            Err(GpuError::InvalidLaunch { .. })
        ));
    }

    #[test]
    fn upload_download_roundtrip() {
        let (ctx, mut s, mut clock) = setup();
        let d = ctx.malloc(16).unwrap();
        s.upload(&mut clock, d, &[42u8; 16]).unwrap();
        let got = s.download(&mut clock, d, 16).unwrap();
        assert_eq!(got, vec![42u8; 16]);
        let _ = ctx;
    }

    #[test]
    fn two_streams_overlap_and_wait_event_orders_them() {
        let ctx = GpuContext::new(DeviceProps::v100());
        let cost = GpuCostModel::summit_v100();
        let mut s1 = Stream::new(ctx.clone(), cost.clone());
        let mut s2 = Stream::new(ctx.clone(), cost.clone());
        let mut clock = SimClock::new();
        let a = ctx.malloc(8 << 20).unwrap();
        let b = ctx.malloc(8 << 20).unwrap();
        let c = ctx.malloc(8 << 20).unwrap();

        // two independent copies on two streams overlap: the joint
        // completion is far less than the serial sum
        s1.memcpy_async(&mut clock, b, a, 8 << 20).unwrap();
        s2.memcpy_async(&mut clock, c, a, 8 << 20).unwrap();
        let serial = cost.copy_engine_time(CopyKind::D2D, 8 << 20) * 2;
        let joint = s1.busy_until().max(s2.busy_until());
        assert!(joint < clock.now() + serial);

        // wait_event makes s2's next work start after s1's frontier
        let e = s1.record_event(&mut clock);
        s2.wait_event(&mut clock, e);
        assert!(s2.busy_until() >= e.at());
        s2.memcpy_async(&mut clock, c, b, 1024).unwrap();
        assert!(s2.busy_until() > e.at());
    }

    #[test]
    fn record_and_wait_charge_cpu_overhead() {
        let ctx = GpuContext::new(DeviceProps::v100());
        let cost = GpuCostModel::summit_v100();
        let mut s = Stream::new(ctx, cost.clone());
        let mut clock = SimClock::new();
        let e = s.record_event(&mut clock);
        s.wait_event(&mut clock, e);
        assert_eq!(clock.now(), cost.event_overhead * 2);
    }

    #[test]
    fn events_measure_gpu_spans() {
        let (ctx, mut s, mut clock) = setup();
        let a = ctx.malloc(1 << 20).unwrap();
        let b = ctx.malloc(1 << 20).unwrap();
        let e0 = Event::record(&s, &clock);
        s.memcpy_async(&mut clock, b, a, 1 << 20).unwrap();
        s.synchronize(&mut clock);
        let e1 = Event::record(&s, &clock);
        assert!(e1.elapsed_since(e0) > SimTime::ZERO);
        assert_eq!(e0.elapsed_since(e1), SimTime::ZERO); // saturates
    }
}
