//! Simulated GPU/host memory with distinct address spaces.
//!
//! The simulator gives every allocation a real backing `Vec<u8>` so packing
//! kernels move actual bytes and tests can verify functional correctness.
//! Each allocation is tagged with a [`MemSpace`]; the runtime enforces the
//! same visibility rules a CUDA program lives under:
//!
//! * **Device** memory is visible to kernels and device-side copies only.
//!   Host code must use an explicit copy (or the documented `peek`/`poke`
//!   debug backdoor) to touch it.
//! * **Host** (pageable) memory is *not* visible to device code — a kernel
//!   dereferencing it is an error in the simulator, where on real hardware
//!   it would be a crash or silent corruption.
//! * **Pinned** host memory is visible to the DMA engine (fast copies) but
//!   not directly addressable by kernels.
//! * **Mapped** (zero-copy) host memory is visible to both sides; this is
//!   the buffer class the paper's *one-shot* method packs into.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::device::DeviceProps;
use crate::error::{GpuError, GpuResult};
use crate::fault::{GpuFaultInjector, GpuFaultSite};

/// Address space of an allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemSpace {
    /// GPU global memory (`cudaMalloc`).
    Device,
    /// Ordinary pageable host memory (`malloc`).
    Host,
    /// Page-locked host memory (`cudaMallocHost` without mapping).
    Pinned,
    /// Page-locked, device-mapped ("zero-copy") host memory
    /// (`cudaHostAlloc(..., cudaHostAllocMapped)`).
    Mapped,
}

impl MemSpace {
    /// Can a kernel (device code) dereference pointers in this space?
    #[inline]
    pub fn device_accessible(self) -> bool {
        matches!(self, MemSpace::Device | MemSpace::Mapped)
    }

    /// Can host code dereference pointers in this space?
    #[inline]
    pub fn host_accessible(self) -> bool {
        !matches!(self, MemSpace::Device)
    }

    /// Is this space on the host side of the interconnect (so device access
    /// pays interconnect bandwidth rather than HBM bandwidth)?
    #[inline]
    pub fn on_host(self) -> bool {
        !matches!(self, MemSpace::Device)
    }
}

/// A (typed-as-bytes) pointer into simulated memory: allocation handle plus
/// byte offset. `GpuPtr` is `Copy` and supports pointer arithmetic with
/// [`GpuPtr::add`], like a raw `char*`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GpuPtr {
    pub(crate) alloc: u64,
    /// Byte offset from the allocation base.
    pub offset: usize,
    /// Address space (cached from the allocation for cheap checks).
    pub space: MemSpace,
}

impl GpuPtr {
    /// Pointer `self + bytes`.
    // named after raw-pointer `add`, deliberately mirroring CUDA-style
    // pointer arithmetic at call sites
    #[allow(clippy::should_implement_trait)]
    #[inline]
    #[must_use]
    pub fn add(self, bytes: usize) -> GpuPtr {
        GpuPtr {
            alloc: self.alloc,
            offset: self.offset + bytes,
            space: self.space,
        }
    }

    /// Signed pointer arithmetic: `self + delta` bytes. Returns `None` if
    /// the result would fall before the allocation base.
    #[inline]
    #[must_use]
    pub fn offset_by(self, delta: i64) -> Option<GpuPtr> {
        let off = self.offset as i64 + delta;
        if off < 0 {
            None
        } else {
            Some(GpuPtr {
                alloc: self.alloc,
                offset: off as usize,
                space: self.space,
            })
        }
    }

    /// Alignment of this pointer, assuming (as the simulator guarantees)
    /// that every allocation base is 256-byte aligned — the same guarantee
    /// `cudaMalloc` provides. Returns the largest power of two ≤ 256 that
    /// divides the address.
    pub fn alignment(self) -> usize {
        let mut a = 256usize;
        while a > 1 && self.offset % a != 0 {
            a /= 2;
        }
        a
    }

    /// The numeric id of the owning allocation (for diagnostics).
    pub fn alloc_id(self) -> u64 {
        self.alloc
    }
}

struct Alloc {
    data: Vec<u8>,
    space: MemSpace,
}

/// The memory state of one simulated device + its host process.
///
/// Obtained from [`GpuContext::memory`]; kernels receive `&mut Memory` and
/// use the checked accessors here.
pub struct Memory {
    allocs: HashMap<u64, Alloc>,
    next_id: u64,
    device_capacity: usize,
    device_used: usize,
    faults: Option<Arc<GpuFaultInjector>>,
}

impl Memory {
    fn new(device_capacity: usize) -> Self {
        Memory {
            allocs: HashMap::new(),
            next_id: 1,
            device_capacity,
            device_used: 0,
            faults: None,
        }
    }

    fn alloc(&mut self, len: usize, space: MemSpace) -> GpuResult<GpuPtr> {
        if space == MemSpace::Device {
            let available = self.device_capacity - self.device_used;
            if let Some(f) = &self.faults {
                if f.should_fail(GpuFaultSite::AllocOom) {
                    return Err(GpuError::OutOfMemory {
                        requested: len,
                        available,
                    });
                }
            }
            if len > available {
                return Err(GpuError::OutOfMemory {
                    requested: len,
                    available,
                });
            }
            self.device_used += len;
        }
        let id = self.next_id;
        self.next_id += 1;
        self.allocs.insert(
            id,
            Alloc {
                data: vec![0u8; len],
                space,
            },
        );
        Ok(GpuPtr {
            alloc: id,
            offset: 0,
            space,
        })
    }

    fn free(&mut self, ptr: GpuPtr) -> GpuResult<()> {
        match self.allocs.remove(&ptr.alloc) {
            Some(a) => {
                if a.space == MemSpace::Device {
                    self.device_used -= a.data.len();
                }
                Ok(())
            }
            None => Err(GpuError::InvalidPointer { alloc: ptr.alloc }),
        }
    }

    fn slice(&self, ptr: GpuPtr, len: usize) -> GpuResult<&[u8]> {
        let a = self
            .allocs
            .get(&ptr.alloc)
            .ok_or(GpuError::InvalidPointer { alloc: ptr.alloc })?;
        a.data
            .get(ptr.offset..ptr.offset + len)
            .ok_or(GpuError::OutOfBounds {
                alloc: ptr.alloc,
                offset: ptr.offset,
                len,
                size: a.data.len(),
            })
    }

    fn slice_mut(&mut self, ptr: GpuPtr, len: usize) -> GpuResult<&mut [u8]> {
        let a = self
            .allocs
            .get_mut(&ptr.alloc)
            .ok_or(GpuError::InvalidPointer { alloc: ptr.alloc })?;
        let size = a.data.len();
        a.data
            .get_mut(ptr.offset..ptr.offset + len)
            .ok_or(GpuError::OutOfBounds {
                alloc: ptr.alloc,
                offset: ptr.offset,
                len,
                size,
            })
    }

    /// The address space an allocation actually lives in (authoritative,
    /// unlike the cached tag on the pointer).
    pub fn space_of(&self, ptr: GpuPtr) -> GpuResult<MemSpace> {
        self.allocs
            .get(&ptr.alloc)
            .map(|a| a.space)
            .ok_or(GpuError::InvalidPointer { alloc: ptr.alloc })
    }

    /// Size in bytes of the allocation `ptr` points into.
    pub fn size_of(&self, ptr: GpuPtr) -> GpuResult<usize> {
        self.allocs
            .get(&ptr.alloc)
            .map(|a| a.data.len())
            .ok_or(GpuError::InvalidPointer { alloc: ptr.alloc })
    }

    /// Device-side read (as from a kernel): source must be device-accessible.
    pub fn dev_read(&self, ptr: GpuPtr, out: &mut [u8]) -> GpuResult<()> {
        let space = self.space_of(ptr)?;
        if !space.device_accessible() {
            return Err(GpuError::NotDeviceAccessible { space });
        }
        out.copy_from_slice(self.slice(ptr, out.len())?);
        Ok(())
    }

    /// Device-side write (as from a kernel): target must be device-accessible.
    pub fn dev_write(&mut self, ptr: GpuPtr, data: &[u8]) -> GpuResult<()> {
        let space = self.space_of(ptr)?;
        if !space.device_accessible() {
            return Err(GpuError::NotDeviceAccessible { space });
        }
        self.slice_mut(ptr, data.len())?.copy_from_slice(data);
        Ok(())
    }

    /// Device-side copy of `len` bytes between device-accessible locations,
    /// the primitive used by packing kernels. Handles the common
    /// different-allocation case without an intermediate buffer; an aliasing
    /// same-allocation copy is allowed only when the ranges are disjoint.
    pub fn dev_copy(&mut self, dst: GpuPtr, src: GpuPtr, len: usize) -> GpuResult<()> {
        let s_space = self.space_of(src)?;
        if !s_space.device_accessible() {
            return Err(GpuError::NotDeviceAccessible { space: s_space });
        }
        let d_space = self.space_of(dst)?;
        if !d_space.device_accessible() {
            return Err(GpuError::NotDeviceAccessible { space: d_space });
        }
        self.raw_copy(dst, src, len)
    }

    /// Copy with no space checks (used by the DMA/memcpy machinery, which
    /// performs its own kind-specific validation).
    pub(crate) fn raw_copy(&mut self, dst: GpuPtr, src: GpuPtr, len: usize) -> GpuResult<()> {
        if len == 0 {
            return Ok(());
        }
        if dst.alloc == src.alloc {
            // Same allocation: permit only non-overlapping ranges.
            let lo = src.offset.min(dst.offset);
            let hi_start = src.offset.max(dst.offset);
            if hi_start < lo + len {
                return Err(GpuError::OverlappingBuffers);
            }
            let a = self
                .allocs
                .get_mut(&src.alloc)
                .ok_or(GpuError::InvalidPointer { alloc: src.alloc })?;
            let size = a.data.len();
            if src.offset + len > size || dst.offset + len > size {
                let (offset, _) = if src.offset + len > size {
                    (src.offset, len)
                } else {
                    (dst.offset, len)
                };
                return Err(GpuError::OutOfBounds {
                    alloc: src.alloc,
                    offset,
                    len,
                    size,
                });
            }
            a.data.copy_within(src.offset..src.offset + len, dst.offset);
            return Ok(());
        }
        // Distinct allocations: split-borrow via two map lookups.
        // (HashMap has no get_two_mut on stable; go through raw pointers
        // guarded by the distinct-key check above.)
        let src_slice: *const [u8] = self.slice(src, len)?;
        let dst_slice: *mut [u8] = self.slice_mut(dst, len)?;
        // SAFETY: `src.alloc != dst.alloc`, so the two slices belong to
        // different `Vec<u8>` buffers and cannot alias; both were bounds-
        // checked by `slice`/`slice_mut`.
        unsafe {
            (*dst_slice).copy_from_slice(&*src_slice);
        }
        Ok(())
    }

    /// Host-side read: source must be host-accessible.
    pub fn host_read(&self, ptr: GpuPtr, out: &mut [u8]) -> GpuResult<()> {
        let space = self.space_of(ptr)?;
        if !space.host_accessible() {
            return Err(GpuError::NotHostAccessible);
        }
        out.copy_from_slice(self.slice(ptr, out.len())?);
        Ok(())
    }

    /// Host-side write: target must be host-accessible.
    pub fn host_write(&mut self, ptr: GpuPtr, data: &[u8]) -> GpuResult<()> {
        let space = self.space_of(ptr)?;
        if !space.host_accessible() {
            return Err(GpuError::NotHostAccessible);
        }
        self.slice_mut(ptr, data.len())?.copy_from_slice(data);
        Ok(())
    }

    /// Debug backdoor read ignoring space rules (like a debugger). Costs no
    /// virtual time; intended for test setup and verification only.
    pub fn peek(&self, ptr: GpuPtr, len: usize) -> GpuResult<Vec<u8>> {
        Ok(self.slice(ptr, len)?.to_vec())
    }

    /// Debug backdoor write ignoring space rules. Costs no virtual time;
    /// intended for test setup only.
    pub fn poke(&mut self, ptr: GpuPtr, data: &[u8]) -> GpuResult<()> {
        self.slice_mut(ptr, data.len())?.copy_from_slice(data);
        Ok(())
    }

    /// FNV-1a 64 checksum over `len` bytes at `ptr`, ignoring space rules
    /// (the verification analogue of the `peek` backdoor: snapshot framing
    /// and integrity checks need to summarize device bytes without staging
    /// them through a host copy). Costs no virtual time.
    pub fn checksum_region(&self, ptr: GpuPtr, len: usize) -> GpuResult<u64> {
        let bytes = self.slice(ptr, len)?;
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Ok(h)
    }

    /// Install (or, with `None`, remove) a deterministic fault injector.
    /// Every clone of the owning [`GpuContext`] and every stream bound to
    /// it observes the change, since they all share this `Memory`.
    pub fn set_fault_injector(&mut self, inj: Option<Arc<GpuFaultInjector>>) {
        self.faults = inj;
    }

    /// The installed fault injector, if any.
    pub fn fault_injector(&self) -> Option<Arc<GpuFaultInjector>> {
        self.faults.clone()
    }

    /// Bytes of device memory currently allocated.
    pub fn device_used(&self) -> usize {
        self.device_used
    }

    /// Number of live allocations across all spaces.
    pub fn live_allocations(&self) -> usize {
        self.allocs.len()
    }
}

/// Handle to one simulated GPU and its host process memory. Cheap to clone;
/// all clones share the same memory state.
#[derive(Clone)]
pub struct GpuContext {
    mem: Arc<Mutex<Memory>>,
    props: Arc<DeviceProps>,
}

impl GpuContext {
    /// Create a context for the given device model.
    pub fn new(props: DeviceProps) -> Self {
        let cap = props.global_mem_bytes;
        GpuContext {
            mem: Arc::new(Mutex::new(Memory::new(cap))),
            props: Arc::new(props),
        }
    }

    /// The device description this context simulates.
    pub fn props(&self) -> &DeviceProps {
        &self.props
    }

    /// Lock and access the memory state. Hold the guard only for the
    /// duration of one operation.
    pub fn memory(&self) -> parking_lot::MutexGuard<'_, Memory> {
        self.mem.lock()
    }

    /// `cudaMalloc`: allocate device global memory.
    pub fn malloc(&self, len: usize) -> GpuResult<GpuPtr> {
        self.memory().alloc(len, MemSpace::Device)
    }

    /// `malloc`: allocate pageable host memory.
    pub fn host_alloc(&self, len: usize) -> GpuResult<GpuPtr> {
        self.memory().alloc(len, MemSpace::Host)
    }

    /// `cudaMallocHost`: allocate pinned (page-locked) host memory.
    pub fn pinned_alloc(&self, len: usize) -> GpuResult<GpuPtr> {
        self.memory().alloc(len, MemSpace::Pinned)
    }

    /// `cudaHostAlloc(cudaHostAllocMapped)`: allocate mapped zero-copy host
    /// memory, addressable from kernels.
    pub fn mapped_alloc(&self, len: usize) -> GpuResult<GpuPtr> {
        self.memory().alloc(len, MemSpace::Mapped)
    }

    /// Free any allocation.
    pub fn free(&self, ptr: GpuPtr) -> GpuResult<()> {
        self.memory().free(ptr)
    }

    /// Install (or, with `None`, remove) a deterministic fault injector on
    /// this device. Convenience for [`Memory::set_fault_injector`].
    pub fn set_fault_injector(&self, inj: Option<Arc<GpuFaultInjector>>) {
        self.memory().set_fault_injector(inj);
    }

    /// The installed fault injector, if any.
    pub fn fault_injector(&self) -> Option<Arc<GpuFaultInjector>> {
        self.memory().fault_injector()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> GpuContext {
        GpuContext::new(DeviceProps::v100())
    }

    #[test]
    fn alloc_and_backdoor_roundtrip() {
        let c = ctx();
        let p = c.malloc(64).unwrap();
        c.memory().poke(p, &[7u8; 64]).unwrap();
        assert_eq!(c.memory().peek(p, 64).unwrap(), vec![7u8; 64]);
        c.free(p).unwrap();
    }

    #[test]
    fn host_cannot_touch_device_memory() {
        let c = ctx();
        let p = c.malloc(16).unwrap();
        let mut buf = [0u8; 4];
        assert_eq!(
            c.memory().host_read(p, &mut buf),
            Err(GpuError::NotHostAccessible)
        );
        assert_eq!(
            c.memory().host_write(p, &buf),
            Err(GpuError::NotHostAccessible)
        );
    }

    #[test]
    fn device_cannot_touch_pageable_host_memory() {
        let c = ctx();
        let h = c.host_alloc(16).unwrap();
        let d = c.malloc(16).unwrap();
        let mut buf = [0u8; 4];
        assert!(matches!(
            c.memory().dev_read(h, &mut buf),
            Err(GpuError::NotDeviceAccessible { .. })
        ));
        assert!(matches!(
            c.memory().dev_copy(d, h, 4),
            Err(GpuError::NotDeviceAccessible { .. })
        ));
    }

    #[test]
    fn device_can_touch_mapped_memory() {
        let c = ctx();
        let m = c.mapped_alloc(16).unwrap();
        let d = c.malloc(16).unwrap();
        c.memory().poke(d, &[3u8; 16]).unwrap();
        c.memory().dev_copy(m, d, 16).unwrap();
        assert_eq!(c.memory().peek(m, 16).unwrap(), vec![3u8; 16]);
        // and host can read mapped memory directly
        let mut out = [0u8; 16];
        c.memory().host_read(m, &mut out).unwrap();
        assert_eq!(out, [3u8; 16]);
    }

    #[test]
    fn out_of_bounds_detected() {
        let c = ctx();
        let p = c.malloc(8).unwrap();
        let err = c.memory().peek(p.add(4), 8).unwrap_err();
        assert!(matches!(
            err,
            GpuError::OutOfBounds {
                offset: 4,
                len: 8,
                size: 8,
                ..
            }
        ));
    }

    #[test]
    fn use_after_free_detected() {
        let c = ctx();
        let p = c.malloc(8).unwrap();
        c.free(p).unwrap();
        assert!(matches!(
            c.memory().peek(p, 1),
            Err(GpuError::InvalidPointer { .. })
        ));
        assert!(matches!(c.free(p), Err(GpuError::InvalidPointer { .. })));
    }

    #[test]
    fn device_memory_exhaustion() {
        let c = GpuContext::new(DeviceProps {
            global_mem_bytes: 1024,
            ..DeviceProps::v100()
        });
        let _a = c.malloc(1000).unwrap();
        let err = c.malloc(100).unwrap_err();
        assert!(matches!(
            err,
            GpuError::OutOfMemory {
                requested: 100,
                available: 24
            }
        ));
    }

    #[test]
    fn injected_alloc_oom_is_scripted_and_reported() {
        use crate::fault::{GpuFaultInjector, GpuFaultSite, GpuFaultSpec, SiteSpec};
        let c = ctx();
        c.set_fault_injector(Some(GpuFaultInjector::new(GpuFaultSpec {
            seed: 42,
            alloc_oom: SiteSpec::at(&[0]),
            ..GpuFaultSpec::default()
        })));
        // plenty of capacity, but the script kills the first device alloc
        let err = c.malloc(64).unwrap_err();
        assert!(matches!(err, GpuError::OutOfMemory { requested: 64, .. }));
        assert!(err.is_transient());
        // the very next device alloc succeeds; host allocs are never hit
        assert!(c.malloc(64).is_ok());
        assert!(c.host_alloc(64).is_ok());
        let inj = c.fault_injector().unwrap();
        assert_eq!(inj.injected(GpuFaultSite::AllocOom), 1);
        assert_eq!(inj.calls(GpuFaultSite::AllocOom), 2);
        // uninstalling restores the happy path
        c.set_fault_injector(None);
        assert!(c.fault_injector().is_none());
    }

    #[test]
    fn free_returns_device_capacity() {
        let c = GpuContext::new(DeviceProps {
            global_mem_bytes: 1024,
            ..DeviceProps::v100()
        });
        let a = c.malloc(1024).unwrap();
        c.free(a).unwrap();
        assert!(c.malloc(1024).is_ok());
    }

    #[test]
    fn same_alloc_copy_disjoint_ok_overlap_err() {
        let c = ctx();
        let p = c.malloc(32).unwrap();
        c.memory()
            .poke(p, &(0..32).map(|b| b as u8).collect::<Vec<_>>())
            .unwrap();
        c.memory().dev_copy(p.add(16), p, 16).unwrap();
        assert_eq!(c.memory().peek(p.add(16), 4).unwrap(), vec![0, 1, 2, 3]);
        assert_eq!(
            c.memory().dev_copy(p.add(8), p, 16),
            Err(GpuError::OverlappingBuffers)
        );
    }

    #[test]
    fn pointer_arithmetic_and_alignment() {
        let c = ctx();
        let p = c.malloc(1024).unwrap();
        assert_eq!(p.alignment(), 256);
        assert_eq!(p.add(4).alignment(), 4);
        assert_eq!(p.add(12).alignment(), 4);
        assert_eq!(p.add(16).alignment(), 16);
        assert_eq!(p.add(3).alignment(), 1);
    }

    #[test]
    fn zero_length_ops_are_fine() {
        let c = ctx();
        let a = c.malloc(0).unwrap();
        let b = c.malloc(0).unwrap();
        c.memory().dev_copy(a, b, 0).unwrap();
        assert_eq!(c.memory().peek(a, 0).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn checksum_region_is_content_addressed() {
        let c = ctx();
        let a = c.malloc(32).unwrap();
        let b = c.host_alloc(32).unwrap();
        let data: Vec<u8> = (0..32).collect();
        c.memory().poke(a, &data).unwrap();
        c.memory().poke(b, &data).unwrap();
        let mem = c.memory();
        // same bytes → same sum, regardless of address space
        assert_eq!(
            mem.checksum_region(a, 32).unwrap(),
            mem.checksum_region(b, 32).unwrap()
        );
        // a sub-range sums differently, and a single flipped byte changes it
        assert_ne!(
            mem.checksum_region(a, 32).unwrap(),
            mem.checksum_region(a, 16).unwrap()
        );
        drop(mem);
        let before = c.memory().checksum_region(a, 32).unwrap();
        c.memory().poke(a.add(7), &[0xFF]).unwrap();
        assert_ne!(before, c.memory().checksum_region(a, 32).unwrap());
        // bounds are enforced like every other accessor
        assert!(matches!(
            c.memory().checksum_region(a.add(30), 8),
            Err(GpuError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn space_queries() {
        let c = ctx();
        let d = c.malloc(1).unwrap();
        let h = c.host_alloc(1).unwrap();
        let p = c.pinned_alloc(1).unwrap();
        let m = c.mapped_alloc(1).unwrap();
        let mem = c.memory();
        assert_eq!(mem.space_of(d).unwrap(), MemSpace::Device);
        assert_eq!(mem.space_of(h).unwrap(), MemSpace::Host);
        assert_eq!(mem.space_of(p).unwrap(), MemSpace::Pinned);
        assert_eq!(mem.space_of(m).unwrap(), MemSpace::Mapped);
        assert!(MemSpace::Mapped.device_accessible());
        assert!(!MemSpace::Pinned.device_accessible());
        assert!(MemSpace::Pinned.host_accessible());
        assert!(!MemSpace::Device.on_host());
    }
}
