//! A textual mini-language for MPI datatype constructions, so the CLI (and
//! curious users) can build types without writing Rust:
//!
//! ```text
//! spec     := named | ctor
//! named    := byte | char | short | int | long | float | double
//! ctor     := name '(' arg (',' arg)* ')'
//! arg      := integer | list | spec
//! list     := '[' integer (',' integer)* ']'
//!
//! contiguous(COUNT, spec)
//! vector(COUNT, BLOCKLEN, STRIDE, spec)          -- stride in elements
//! hvector(COUNT, BLOCKLEN, STRIDE_BYTES, spec)
//! subarray([SIZES], [SUBSIZES], [STARTS], spec)  -- C order, dim 0 slowest
//! indexed([BLOCKLENS], [DISPLS], spec)           -- displs in elements
//! indexed_block(BLOCKLEN, [DISPLS], spec)
//! hindexed([BLOCKLENS], [DISPLS_BYTES], spec)
//! resized(LB, EXTENT, spec)
//! dup(spec)
//! ```
//!
//! Example: `vector(13, 100, 256, byte)` — the paper's 2-D plane.

use mpi_sim::consts::*;
use mpi_sim::datatype::Order;
use mpi_sim::{Datatype, MpiError, MpiResult, RankCtx};

/// A parsed (but not yet built) spec.
#[derive(Debug, Clone, PartialEq)]
pub enum Spec {
    /// A named type keyword.
    Named(String),
    /// A constructor with raw arguments.
    Ctor {
        /// Constructor keyword.
        name: String,
        /// Arguments in order.
        args: Vec<Arg>,
    },
}

/// One constructor argument.
#[derive(Debug, Clone, PartialEq)]
pub enum Arg {
    /// An integer literal.
    Int(i64),
    /// A bracketed integer list.
    List(Vec<i64>),
    /// A nested type spec.
    Type(Spec),
}

/// Parse a spec string.
pub fn parse(input: &str) -> Result<Spec, String> {
    let mut p = Parser {
        s: input.as_bytes(),
        pos: 0,
    };
    let spec = p.spec()?;
    p.skip_ws();
    if p.pos != p.s.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(spec)
}

struct Parser<'a> {
    s: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.s.len() && self.s[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.s.get(self.pos).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {} of the spec",
                c as char, self.pos
            ))
        }
    }

    fn ident(&mut self) -> Result<String, String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .s
            .get(self.pos)
            .is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'_')
        {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(format!("expected an identifier at byte {start}"));
        }
        let text = std::str::from_utf8(&self.s[start..self.pos])
            .map_err(|_| format!("spec is not valid UTF-8 at byte {start}"))?;
        Ok(text.to_ascii_lowercase())
    }

    fn int(&mut self) -> Result<i64, String> {
        self.skip_ws();
        let start = self.pos;
        if self.s.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self.s.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.s[start..self.pos])
            .map_err(|_| format!("spec is not valid UTF-8 at byte {start}"))?;
        text.parse()
            .map_err(|_| format!("expected an integer at byte {start}"))
    }

    fn spec(&mut self) -> Result<Spec, String> {
        let name = self.ident()?;
        if self.peek() == Some(b'(') {
            self.eat(b'(')?;
            let mut args = Vec::new();
            loop {
                args.push(self.arg()?);
                match self.peek() {
                    Some(b',') => self.eat(b',')?,
                    Some(b')') => {
                        self.eat(b')')?;
                        break;
                    }
                    other => {
                        return Err(format!(
                            "expected ',' or ')' inside {name}(...), found {other:?}"
                        ))
                    }
                }
            }
            Ok(Spec::Ctor { name, args })
        } else {
            Ok(Spec::Named(name))
        }
    }

    fn arg(&mut self) -> Result<Arg, String> {
        match self.peek() {
            Some(b'[') => {
                self.eat(b'[')?;
                let mut v = Vec::new();
                loop {
                    v.push(self.int()?);
                    match self.peek() {
                        Some(b',') => self.eat(b',')?,
                        Some(b']') => {
                            self.eat(b']')?;
                            break;
                        }
                        other => {
                            return Err(format!("expected ',' or ']' in list, found {other:?}"))
                        }
                    }
                }
                Ok(Arg::List(v))
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => Ok(Arg::Int(self.int()?)),
            _ => Ok(Arg::Type(self.spec()?)),
        }
    }
}

fn as_int(a: &Arg, what: &str) -> MpiResult<i64> {
    match a {
        Arg::Int(v) => Ok(*v),
        other => Err(MpiError::InvalidArg(format!(
            "{what} must be an integer, got {other:?}"
        ))),
    }
}

fn as_list(a: &Arg, what: &str) -> MpiResult<Vec<i64>> {
    match a {
        Arg::List(v) => Ok(v.clone()),
        other => Err(MpiError::InvalidArg(format!(
            "{what} must be a [list], got {other:?}"
        ))),
    }
}

fn as_type(a: &Arg, ctx: &mut RankCtx, what: &str) -> MpiResult<Datatype> {
    match a {
        Arg::Type(s) => build(s, ctx),
        other => Err(MpiError::InvalidArg(format!(
            "{what} must be a type spec, got {other:?}"
        ))),
    }
}

fn arity(name: &str, args: &[Arg], n: usize) -> MpiResult<()> {
    if args.len() != n {
        Err(MpiError::InvalidArg(format!(
            "{name} takes {n} arguments, got {}",
            args.len()
        )))
    } else {
        Ok(())
    }
}

/// Build a parsed spec into the rank's registry.
pub fn build(spec: &Spec, ctx: &mut RankCtx) -> MpiResult<Datatype> {
    match spec {
        Spec::Named(n) => match n.as_str() {
            "byte" => Ok(MPI_BYTE),
            "char" => Ok(MPI_CHAR),
            "short" => Ok(MPI_SHORT),
            "int" => Ok(MPI_INT),
            "long" => Ok(MPI_LONG),
            "float" => Ok(MPI_FLOAT),
            "double" => Ok(MPI_DOUBLE),
            other => Err(MpiError::InvalidArg(format!(
                "unknown named type `{other}`"
            ))),
        },
        Spec::Ctor { name, args } => match name.as_str() {
            "contiguous" => {
                arity(name, args, 2)?;
                let count = as_int(&args[0], "count")? as i32;
                let old = as_type(&args[1], ctx, "element type")?;
                ctx.type_contiguous(count, old)
            }
            "vector" => {
                arity(name, args, 4)?;
                let count = as_int(&args[0], "count")? as i32;
                let bl = as_int(&args[1], "blocklength")? as i32;
                let stride = as_int(&args[2], "stride")? as i32;
                let old = as_type(&args[3], ctx, "element type")?;
                ctx.type_vector(count, bl, stride, old)
            }
            "hvector" => {
                arity(name, args, 4)?;
                let count = as_int(&args[0], "count")? as i32;
                let bl = as_int(&args[1], "blocklength")? as i32;
                let stride = as_int(&args[2], "stride_bytes")?;
                let old = as_type(&args[3], ctx, "element type")?;
                ctx.type_create_hvector(count, bl, stride, old)
            }
            "subarray" => {
                arity(name, args, 4)?;
                let sizes: Vec<i32> = as_list(&args[0], "sizes")?
                    .iter()
                    .map(|&v| v as i32)
                    .collect();
                let subsizes: Vec<i32> = as_list(&args[1], "subsizes")?
                    .iter()
                    .map(|&v| v as i32)
                    .collect();
                let starts: Vec<i32> = as_list(&args[2], "starts")?
                    .iter()
                    .map(|&v| v as i32)
                    .collect();
                let old = as_type(&args[3], ctx, "element type")?;
                ctx.type_create_subarray(&sizes, &subsizes, &starts, Order::C, old)
            }
            "indexed" => {
                arity(name, args, 3)?;
                let bls: Vec<i32> = as_list(&args[0], "blocklengths")?
                    .iter()
                    .map(|&v| v as i32)
                    .collect();
                let displs: Vec<i32> = as_list(&args[1], "displacements")?
                    .iter()
                    .map(|&v| v as i32)
                    .collect();
                let old = as_type(&args[2], ctx, "element type")?;
                ctx.type_indexed(&bls, &displs, old)
            }
            "indexed_block" => {
                arity(name, args, 3)?;
                let bl = as_int(&args[0], "blocklength")? as i32;
                let displs: Vec<i32> = as_list(&args[1], "displacements")?
                    .iter()
                    .map(|&v| v as i32)
                    .collect();
                let old = as_type(&args[2], ctx, "element type")?;
                ctx.type_create_indexed_block(bl, &displs, old)
            }
            "hindexed" => {
                arity(name, args, 3)?;
                let bls: Vec<i32> = as_list(&args[0], "blocklengths")?
                    .iter()
                    .map(|&v| v as i32)
                    .collect();
                let displs = as_list(&args[1], "displacements_bytes")?;
                let old = as_type(&args[2], ctx, "element type")?;
                ctx.type_create_hindexed(&bls, &displs, old)
            }
            "resized" => {
                arity(name, args, 3)?;
                let lb = as_int(&args[0], "lb")?;
                let extent = as_int(&args[1], "extent")?;
                let old = as_type(&args[2], ctx, "type")?;
                ctx.type_create_resized(old, lb, extent)
            }
            "dup" => {
                arity(name, args, 1)?;
                let old = as_type(&args[0], ctx, "type")?;
                ctx.type_dup(old)
            }
            other => Err(MpiError::InvalidArg(format!(
                "unknown constructor `{other}`"
            ))),
        },
    }
}

/// Parse and build in one step.
pub fn build_str(input: &str, ctx: &mut RankCtx) -> MpiResult<Datatype> {
    let spec = parse(input).map_err(MpiError::InvalidArg)?;
    build(&spec, ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpi_sim::WorldConfig;

    fn ctx() -> RankCtx {
        RankCtx::standalone(&WorldConfig::summit(1))
    }

    #[test]
    fn parses_named_types() {
        assert_eq!(parse("byte").unwrap(), Spec::Named("byte".to_string()));
        assert_eq!(parse("  FLOAT ").unwrap(), Spec::Named("float".to_string()));
    }

    #[test]
    fn parses_nested_ctors() {
        let s = parse("vector(13, 100, 256, byte)").unwrap();
        match s {
            Spec::Ctor { name, args } => {
                assert_eq!(name, "vector");
                assert_eq!(args.len(), 4);
                assert_eq!(args[0], Arg::Int(13));
                assert_eq!(args[3], Arg::Type(Spec::Named("byte".to_string())));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_lists() {
        let s = parse("subarray([1024,512,256],[47,13,100],[0,0,0],byte)").unwrap();
        match s {
            Spec::Ctor { args, .. } => {
                assert_eq!(args[0], Arg::List(vec![1024, 512, 256]));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_tokens() {
        assert!(parse("byte extra").is_err());
        assert!(parse("vector(1,2,3,byte").is_err());
        assert!(parse("[1,2]").is_err());
        assert!(parse("vector(1,,3,byte)").is_err());
    }

    #[test]
    fn builds_the_paper_plane() {
        let mut ctx = ctx();
        let dt = build_str("vector(13, 100, 256, byte)", &mut ctx).unwrap();
        let a = ctx.attrs(dt).unwrap();
        assert_eq!(a.size, 1300);
        assert_eq!(a.extent(), 12 * 256 + 100);
    }

    #[test]
    fn builds_nested_and_matches_rust_construction() {
        let mut ctx = ctx();
        let via_spec = build_str(
            "hvector(47, 1, 131072, hvector(13, 1, 256, contiguous(100, byte)))",
            &mut ctx,
        )
        .unwrap();
        let row = ctx.type_contiguous(100, MPI_BYTE).unwrap();
        let plane = ctx.type_create_hvector(13, 1, 256, row).unwrap();
        let via_rust = ctx.type_create_hvector(47, 1, 131072, plane).unwrap();
        assert_eq!(ctx.attrs(via_spec).unwrap(), ctx.attrs(via_rust).unwrap());
    }

    #[test]
    fn builds_every_constructor() {
        let mut ctx = ctx();
        for s in [
            "contiguous(8, int)",
            "vector(4, 2, 8, float)",
            "hvector(4, 2, 64, double)",
            "subarray([8,8],[2,4],[1,2],byte)",
            "indexed([2,1],[0,5],int)",
            "indexed_block(2,[0,4,8],short)",
            "hindexed([1,2],[0,32],long)",
            "resized(0, 64, vector(2,1,2,int))",
            "dup(float)",
        ] {
            let dt = build_str(s, &mut ctx).unwrap_or_else(|e| panic!("{s}: {e}"));
            assert!(ctx.attrs(dt).unwrap().size > 0, "{s}");
        }
    }

    #[test]
    fn build_reports_semantic_errors() {
        let mut ctx = ctx();
        assert!(build_str("quux(1, byte)", &mut ctx).is_err());
        assert!(build_str("vector(1, 2, byte, 3)", &mut ctx).is_err());
        assert!(build_str("subarray([4],[9],[0],byte)", &mut ctx).is_err());
        assert!(build_str("unobtainium", &mut ctx).is_err());
    }
}
