//! `tempi-cli` — a command-line playground for the TEMPI reproduction.
//!
//! ```text
//! tempi-cli describe "<spec>"                  inspect a datatype end to end
//! tempi-cli pack "<spec>" [--incount N] [--platform mv|op|sp]
//!                                              virtual pack time, TEMPI vs system
//! tempi-cli commit "<spec>" [--platform mv|op|sp]
//!                                              Fig. 6-style create/commit breakdown
//! tempi-cli model <bytes> <block> [--word W] [--chunk C]
//!                                              evaluate the §5 method models
//! tempi-cli send "<spec>" [--incount N] [--method device|oneshot|staged]
//!                [--tuner off|model|online]
//!                [--rounds R]
//!                [--faults "<plan>"]           2-rank send/recv, optionally
//!                [--trace out.json]            under a deterministic fault
//!                                              plan; prints the method, the
//!                                              tuner counters, the
//!                                              degradation log and fault
//!                                              statistics
//! tempi-cli stencil [--ranks P] [--n N] [--iters I]
//!                [--faults "<plan>"] [--recover]
//!                [--checkpoint-every N]
//!                [--trace out.json]
//!                                              multi-rank halo exchange;
//!                                              with --recover, survivors
//!                                              revoke/agree/shrink around
//!                                              killed ranks and rebuild the
//!                                              dead subdomains from the
//!                                              last committed checkpoint
//!                                              generation
//! tempi-cli chaos [--seed S] [--iters N] [--shrink] [--out DIR]
//!                                              seeded chaos campaign:
//!                                              random workload × fault
//!                                              scenarios judged by the
//!                                              invariant oracles; with
//!                                              --shrink, failures are
//!                                              delta-debugged to minimal
//!                                              reproducers and dumped
//!                                              (scenario + Chrome trace)
//!                                              under --out
//! tempi-cli chaos --replay DIR                 replay every corpus entry
//!                                              under DIR and verify its
//!                                              recorded expectation
//! tempi-cli spec-help                          the spec mini-language
//! ```
//!
//! `--trace out.json` records every rank's spans in virtual time and
//! writes a Chrome `trace_event` file (open in `chrome://tracing` or
//! Perfetto). `TEMPI_TRACE=off|spans|full` overrides the recording level;
//! `TEMPI_TRACE_FILE=metrics.jsonl` additionally dumps the metrics
//! registry as JSONL.
//!
//! Spec examples: `vector(13, 100, 256, byte)`,
//! `subarray([1024,512,256],[47,13,100],[0,0,0],byte)`.

mod spec;

use gpu_sim::PackDir;
use mpi_sim::datatype::pack_cpu;
use mpi_sim::{FaultPlan, MpiError, RankCtx, World, WorldConfig};
use tempi_bench::{commit_breakdown, fmt_speedup, measure::unpack_time, pack_time, Mode, Platform};
use tempi_core::config::{Method, TempiConfig, TunerMode};
use tempi_core::interpose::InterposedMpi;
use tempi_core::ir::strided_block::strided_block;
use tempi_core::ir::transform::simplify;
use tempi_core::ir::translate::{translate, Translated};
use tempi_core::model::SendModel;
use tempi_core::tempi::{PlanKind, Tempi};
use tempi_core::{TraceLevel, Tracer};
use tempi_stencil::{CheckpointStore, Decomp, HaloConfig, HaloExchanger};

fn usage() -> ! {
    eprintln!(
        "usage:\n  tempi-cli describe \"<spec>\"\n  tempi-cli pack \"<spec>\" [--incount N] [--platform mv|op|sp] [--unpack]\n  tempi-cli commit \"<spec>\" [--platform mv|op|sp]\n  tempi-cli model <bytes> <block> [--word W] [--chunk C]\n  tempi-cli send \"<spec>\" [--incount N] [--method device|oneshot|staged] [--tuner off|model|online] [--rounds R] [--faults \"<plan>\"] [--trace out.json]\n  tempi-cli stencil [--ranks P] [--n N] [--iters I] [--faults \"<plan>\"] [--recover] [--checkpoint-every N] [--trace out.json]\n  tempi-cli chaos [--seed S] [--iters N] [--shrink] [--out DIR] | --replay DIR\n  tempi-cli spec-help\n\nfault plan: comma-separated clauses, e.g.\n  \"seed=42,kernel=1.0,send=0.05,corrupt=0.1,delay=0.2:20us,exit=1@5ms,retries=4,backoff=10us\""
    );
    std::process::exit(2);
}

/// Parse a `--faults` plan. User input must never panic the CLI: a
/// malformed spec becomes an error message naming the offending clause
/// (the library error already quotes it).
fn parse_faults(spec: &str) -> Result<FaultPlan, String> {
    FaultPlan::parse(spec).map_err(|e| format!("invalid --faults plan: {e}"))
}

fn platform_arg(args: &[String]) -> Platform {
    match flag_value(args, "--platform").as_deref() {
        Some("mv") => Platform::Mvapich,
        Some("op") => Platform::OpenMpi,
        Some("sp") | None => Platform::Summit,
        Some(other) => {
            eprintln!("unknown platform `{other}` (use mv, op or sp)");
            std::process::exit(2);
        }
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Parse an integer-valued flag. User input must never panic the CLI:
/// a malformed value exits with a message naming the flag and what it got.
fn int_flag<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    match flag_value(args, flag) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("error: {flag} takes an integer, got `{v}`");
            std::process::exit(2);
        }),
    }
}

/// Terminal error path for library failures with no user-facing recovery:
/// print what failed and exit instead of panicking.
fn fail(what: &str, e: impl std::fmt::Display) -> ! {
    eprintln!("error: {what}: {e}");
    std::process::exit(1);
}

/// Build the tracer a subcommand attaches to its virtual world.
///
/// `--trace FILE` turns recording on (at `full` unless `TEMPI_TRACE`
/// names another level) and returns the Chrome-trace output path.
/// Without `--trace`, setting `TEMPI_TRACE=spans|full` alone also
/// records — useful with `TEMPI_TRACE_FILE` for a metrics-only dump.
fn trace_setup(args: &[String]) -> (Tracer, Option<String>) {
    let path = flag_value(args, "--trace");
    let env_level = match std::env::var("TEMPI_TRACE") {
        Ok(v) => match TraceLevel::parse(&v) {
            Ok(level) => Some(level),
            Err(e) => {
                eprintln!("error: TEMPI_TRACE: {e}");
                std::process::exit(2);
            }
        },
        Err(_) => None,
    };
    let level = match (env_level, &path) {
        (Some(level), _) => level,
        (None, Some(_)) => TraceLevel::Full,
        (None, None) => TraceLevel::Off,
    };
    (Tracer::new(level), path)
}

/// After a traced run: write the Chrome trace where `--trace` asked for
/// it, and the metrics JSONL wherever `TEMPI_TRACE_FILE` points.
fn trace_export(tracer: &Tracer, path: Option<&String>) {
    if let Some(p) = path {
        match tracer.write_chrome_trace(p) {
            Ok(()) => println!(
                "trace         : {} events -> {p} (open in chrome://tracing)",
                tracer.event_count()
            ),
            Err(e) => {
                eprintln!("error: writing trace file `{p}`: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Ok(mp) = std::env::var("TEMPI_TRACE_FILE") {
        if tracer.enabled() {
            match tracer.write_metrics_jsonl(&mp) {
                Ok(()) => println!("metrics       : -> {mp}"),
                Err(e) => {
                    eprintln!("error: writing metrics file `{mp}`: {e}");
                    std::process::exit(1);
                }
            }
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    match cmd.as_str() {
        "describe" => describe(&args[1..]),
        "pack" => pack(&args[1..]),
        "commit" => commit(&args[1..]),
        "model" => model(&args[1..]),
        "send" => send(&args[1..]),
        "stencil" => stencil(&args[1..]),
        "chaos" => chaos(&args[1..]),
        "spec-help" => {
            println!("{}", SPEC_HELP);
        }
        _ => usage(),
    }
}

const SPEC_HELP: &str = r#"type spec mini-language (C storage order, dim 0 slowest):

  byte | char | short | int | long | float | double
  contiguous(COUNT, spec)
  vector(COUNT, BLOCKLEN, STRIDE, spec)            stride in elements
  hvector(COUNT, BLOCKLEN, STRIDE_BYTES, spec)
  subarray([SIZES], [SUBSIZES], [STARTS], spec)
  indexed([BLOCKLENS], [DISPLS], spec)             displs in elements
  indexed_block(BLOCKLEN, [DISPLS], spec)
  hindexed([BLOCKLENS], [DISPLS_BYTES], spec)
  resized(LB, EXTENT, spec)
  dup(spec)

examples:
  vector(13, 100, 256, byte)                        the paper's 2-D plane
  subarray([1024,512,256],[47,13,100],[0,0,0],byte) the paper's 3-D box
  hvector(47, 1, 131072, hvector(13, 1, 256, contiguous(100, byte)))"#;

fn describe(args: &[String]) {
    let Some(input) = args.first() else { usage() };
    let mut ctx = RankCtx::standalone(&WorldConfig::summit(1));
    let dt = match spec::build_str(input, &mut ctx) {
        Ok(dt) => dt,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let attrs = ctx
        .attrs(dt)
        .unwrap_or_else(|e| fail("datatype attributes", e));
    println!("construction : {}", ctx.describe(dt));
    println!(
        "size         : {} bytes   extent: {} bytes   true extent: {} bytes (lb {})",
        attrs.size,
        attrs.extent(),
        attrs.true_extent(),
        attrs.true_lb
    );
    let registry = ctx.registry().clone();
    let translated = {
        let mut reg = registry.write();
        translate(&mut *reg, dt).unwrap_or_else(|e| fail("IR translation", e))
    };
    match translated {
        Translated::Strided(tree) => {
            println!("\ntranslated IR ({} nodes):\n{tree}", tree.node_count());
            let (canon, passes) = simplify(tree);
            println!(
                "canonical after {passes} pass(es) ({} nodes):\n{canon}",
                canon.node_count()
            );
            if let Some(sb) = strided_block(&canon) {
                println!(
                    "StridedBlock : start={} counts={:?} strides={:?}",
                    sb.start, sb.counts, sb.strides
                );
            }
        }
        Translated::Blocks(bl) => {
            println!(
                "\nblock list ({} blocks, largest {} B):",
                bl.blocks.len(),
                bl.max_block()
            );
            for (off, len) in bl.blocks.iter().take(16) {
                println!("  {off:>8} +{len}");
            }
            if bl.blocks.len() > 16 {
                println!("  ... {} more", bl.blocks.len() - 16);
            }
        }
        Translated::Empty => println!("\n(empty type: no bytes)"),
        Translated::Unsupported(c) => {
            println!("\nnot accelerated (combiner {c:?}): falls through to the system MPI")
        }
    }
    // committed plan
    let mut tempi = Tempi::default();
    let plan = tempi
        .type_commit(&mut ctx, dt)
        .unwrap_or_else(|e| fail("type commit", e));
    match &plan.kind {
        PlanKind::Strided(kp) => println!(
            "\nkernel plan  : {:?}, word W={}, block dims {}, grid(x1)={}",
            kp.kind,
            kp.word,
            kp.block,
            kp.grid_for(1)
        ),
        other => println!("\nkernel plan  : {other:?}"),
    }
    println!(
        "commit       : {} introspection calls, {} -> {} IR nodes, {} virtual time",
        plan.report.introspection_calls,
        plan.report.nodes_before,
        plan.report.nodes_after,
        plan.report.commit_time
    );
}

fn pack(args: &[String]) {
    let Some(input) = args.first() else { usage() };
    let input = input.clone();
    let platform = platform_arg(args);
    let incount: usize = int_flag(args, "--incount", 1);
    // span: build once to measure the type reach
    let mut probe = RankCtx::standalone(&platform.world(1));
    let dt = match spec::build_str(&input, &mut probe) {
        Ok(dt) => dt,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let a = probe
        .attrs(dt)
        .unwrap_or_else(|e| fail("datatype attributes", e));
    let span =
        (a.true_ub.max(a.ub) + (incount as i64 - 1) * a.extent().max(0)).max(1) as usize + 64;

    let unpack = args.iter().any(|a| a == "--unpack");
    let measure = |mode: Mode| {
        if unpack {
            unpack_time(
                platform,
                mode,
                TempiConfig::default(),
                |ctx| spec::build_str(&input, ctx),
                incount,
                span,
            )
        } else {
            pack_time(
                platform,
                mode,
                TempiConfig::default(),
                |ctx| spec::build_str(&input, ctx),
                incount,
                span,
            )
        }
        .unwrap_or_else(|e| fail("measurement", e))
    };
    let t = measure(Mode::Tempi);
    let s = measure(Mode::System);
    let what = if unpack { "unpack" } else { "pack" };
    println!("platform      : {}", platform.label());
    println!("TEMPI {what}  : {t}");
    println!("system {what} : {s}");
    println!(
        "speedup       : {}",
        fmt_speedup(s.as_ns_f64() / t.as_ns_f64())
    );
}

fn commit(args: &[String]) {
    let Some(input) = args.first() else { usage() };
    let input = input.clone();
    let platform = platform_arg(args);
    let b = commit_breakdown(platform, |ctx| spec::build_str(&input, ctx))
        .unwrap_or_else(|e| fail("commit breakdown", e));
    println!("platform       : {}", platform.label());
    println!("create         : {}", b.create);
    println!("commit (system): {}", b.commit_system);
    println!("commit (TEMPI) : {}", b.commit_tempi);
    println!(
        "slowdown       : {:.1}x over {} introspection calls",
        b.slowdown(),
        b.introspection_calls
    );
}

fn model(args: &[String]) {
    let (Some(bytes), Some(block)) = (args.first(), args.get(1)) else {
        usage()
    };
    let parse_size = |name: &str, v: &str| -> usize {
        v.parse().unwrap_or_else(|_| {
            eprintln!("error: {name} must be an integer, got `{v}`");
            std::process::exit(2);
        })
    };
    let bytes = parse_size("bytes", bytes);
    let block = parse_size("block", block);
    let word: usize = int_flag(args, "--word", 4);
    let m = SendModel::summit_internode();
    println!("object {bytes} B, contiguous blocks {block} B, word W={word}\n");
    for (name, b) in [
        ("device  ", m.t_device(bytes, block, word)),
        ("one-shot", m.t_oneshot(bytes, block, word)),
        ("staged  ", m.t_staged(bytes, block, word)),
    ] {
        println!(
            "{name}: pack {:>12} + transfer {:>12} + unpack {:>12} = {}",
            format!("{}", b.pack),
            format!("{}", b.transfer),
            format!("{}", b.unpack),
            b.total()
        );
    }
    if let Some(chunk) = flag_value(args, "--chunk") {
        let chunk: usize = chunk.parse().unwrap_or_else(|_| {
            eprintln!("error: --chunk takes an integer, got `{chunk}`");
            std::process::exit(2);
        });
        println!(
            "pipelined({} B chunks): {}",
            chunk,
            m.t_pipelined(bytes, block, word, chunk)
        );
    }
    println!("\nmodel choice: {:?}", m.choose(bytes, block, word));
    // a tiny visual of the pack-direction cost curve
    println!("\npack-kernel time vs block size (device target, this object size):");
    for b in [4usize, 16, 64, 256, 1024, 4096] {
        let t = m.t_pack(PackDir::Pack, gpu_sim::PackTarget::Device, bytes, b, word);
        let bar = "#".repeat(((t.as_us_f64().log10().max(0.0)) * 12.0) as usize);
        println!("  {b:>5} B  {t:>12}  {bar}");
    }
}

/// Deterministic fill for the `send` subcommand's source buffer.
fn fill(n: usize) -> Vec<u8> {
    (0..n)
        .map(|i| (i as u8).wrapping_mul(31).wrapping_add(7))
        .collect()
}

fn send(args: &[String]) {
    let Some(input) = args.first() else { usage() };
    let input = input.clone();
    let incount: usize = int_flag(args, "--incount", 1);
    let method = match flag_value(args, "--method").as_deref() {
        None => None,
        Some("device") => Some(Method::Device),
        Some("oneshot") | Some("one-shot") => Some(Method::OneShot),
        Some("staged") => Some(Method::Staged),
        Some(other) => {
            eprintln!("unknown method `{other}` (use device, oneshot or staged)");
            std::process::exit(2);
        }
    };
    let tuner = match flag_value(args, "--tuner").as_deref() {
        None => TunerMode::default(),
        Some("off") => TunerMode::Off,
        Some("model") => TunerMode::Model,
        Some("online") => TunerMode::Online,
        Some(other) => {
            eprintln!("unknown tuner mode `{other}` (use off, model or online)");
            std::process::exit(2);
        }
    };
    let rounds: usize = int_flag(args, "--rounds", 1).max(1);
    let mut cfg = WorldConfig::summit(2);
    cfg.net.ranks_per_node = 1;
    if let Some(spec) = flag_value(args, "--faults") {
        match parse_faults(&spec) {
            Ok(plan) => cfg = cfg.with_faults(plan),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }
    let (tracer, trace_path) = trace_setup(args);
    cfg = cfg.with_tracer(tracer.clone());
    let results = World::run(&cfg, |ctx| {
        let mut mpi = InterposedMpi::new(TempiConfig {
            force_method: method,
            tuner,
            ..TempiConfig::default()
        });
        let dt = spec::build_str(&input, ctx)?;
        mpi.type_commit(ctx, dt)?;
        let a = ctx.attrs(dt)?;
        let span =
            (a.true_ub.max(a.ub) + (incount as i64 - 1) * a.extent().max(0)).max(1) as usize + 64;
        let packed_len = a.size as usize * incount;
        let buf = ctx.gpu.malloc(span)?;
        let mut label = "recv".to_string();
        let mut ok = true;
        for round in 0..rounds {
            if ctx.rank == 0 {
                ctx.gpu.memory().poke(buf, &fill(span))?;
                let m = mpi.send(ctx, buf, incount, dt, 1, round as i32)?;
                label = m.map_or("system fall-through".to_string(), |m| format!("{m:?}"));
            } else {
                let st = mpi.recv(ctx, buf, incount, dt, Some(0), Some(round as i32))?;
                // verify the typed bytes against the CPU pack oracle
                let raw = ctx.gpu.memory().peek(buf, span)?;
                let reg = ctx.registry().clone();
                let reg = reg.read();
                let mut got = vec![0u8; packed_len];
                let mut pos = 0;
                pack_cpu::pack(&reg, &raw, 0, incount, dt, &mut got, &mut pos)?;
                let mut want = vec![0u8; packed_len];
                let mut pos = 0;
                pack_cpu::pack(&reg, &fill(span), 0, incount, dt, &mut want, &mut pos)?;
                ok &= st.bytes == packed_len && got == want;
            }
        }
        mpi.publish_metrics(&ctx.tracer);
        Ok((
            label,
            ok,
            packed_len,
            ctx.clock.now(),
            ctx.faults.stats.clone(),
            mpi.tempi.stats,
        ))
    });
    let results = match results {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "world         : 2 ranks, rank 0 -> rank 1, {}",
        if cfg.faults.is_some() {
            "fault plan active"
        } else {
            "fault-free"
        }
    );
    println!(
        "send method   : {} (last of {rounds} round(s))",
        results[0].0
    );
    let ts = &results[0].5;
    println!(
        "tuner         : mode {tuner:?} — probes {}, bucket hits {}, method switches {}, pool reuse {}/{}, launch-cache hits {}",
        ts.tuner_probes,
        ts.tuner_bucket_hits,
        ts.tuner_method_switches,
        ts.pool_hits,
        ts.pool_hits + ts.pool_fresh_allocs,
        ts.launch_cache_hits
    );
    println!(
        "payload       : {} packed bytes — {}",
        results[1].2,
        if results[1].1 {
            "verified against the CPU pack oracle"
        } else {
            "MISMATCH vs the CPU pack oracle"
        }
    );
    for (rank, (_, _, _, clock, stats, _)) in results.iter().enumerate() {
        println!(
            "rank {rank}        : clock {clock}, send faults {}, recv faults {}, retries {} (backoff {}), delays {} (+{}), peer-gone {}",
            stats.send_faults,
            stats.recv_faults,
            stats.retries,
            stats.backoff_time,
            stats.delays,
            stats.delay_time,
            stats.peer_gone
        );
        for ev in &stats.events {
            println!("  degrade     : {ev}");
        }
    }
    trace_export(&tracer, trace_path.as_ref());
    if !results[1].1 {
        std::process::exit(1);
    }
}

/// One rank's result from the `stencil` subcommand.
struct StencilOutcome {
    /// Full local grid matched the serial oracle byte-for-byte.
    ok: bool,
    /// Revoke/agree/shrink rounds across all iterations.
    shrinks: u64,
    /// World ranks excluded across all shrinks.
    excluded: Vec<usize>,
    /// Final communicator epoch.
    epoch: u64,
    /// Final communicator size.
    size: usize,
    /// Checkpoint generations this rank committed.
    checkpoints: u64,
    /// Subdomain restores served from checkpoint frames.
    restores: u64,
}

/// One rank's share of the `stencil` subcommand: build the exchanger, run
/// `iters` halo exchanges (with ULFM-style recovery when asked), taking a
/// coordinated checkpoint every `checkpoint_every` iterations, then verify
/// the whole local grid against the serial oracle.
fn run_stencil_rank(
    ctx: &mut RankCtx,
    n: usize,
    iters: usize,
    recover: bool,
    checkpoint_every: Option<usize>,
) -> Result<StencilOutcome, MpiError> {
    let mut mpi = InterposedMpi::new(TempiConfig {
        checkpoint_every,
        ..TempiConfig::default()
    });
    let mut ex = HaloExchanger::new(ctx, &mut mpi, HaloConfig::small(n))?;
    ex.fill(ctx)?;
    let mut store = CheckpointStore::new();
    let mut shrinks = 0u64;
    let mut excluded: Vec<usize> = Vec::new();
    for iter in 0..iters {
        // Checkpoints are only taken at the original decomposition: after
        // a shrink the restored state is the periodic extension of the
        // *origin* grid, and re-checkpointing at the new geometry would
        // break that provenance.
        if let Some(every) = checkpoint_every {
            if shrinks == 0 && iter % every == 0 {
                ex.checkpoint(ctx, &mut mpi, &mut store)?;
            }
        }
        if recover {
            let out = ex.exchange_with_recovery(ctx, &mut mpi, &store, 4)?;
            shrinks += out.shrinks;
            for w in out.excluded {
                if !excluded.contains(&w) {
                    excluded.push(w);
                }
            }
        } else {
            ex.exchange(ctx, &mut mpi)?;
        }
    }
    let got = { ctx.gpu.memory().peek(ex.grid, ex.cfg.alloc_bytes())? };
    let ok = got == ex.expected_grid(ctx);
    let result = StencilOutcome {
        ok,
        shrinks,
        excluded,
        epoch: ctx.epoch(),
        size: ctx.size,
        checkpoints: mpi.tempi.stats.checkpoints,
        restores: mpi.tempi.stats.restores,
    };
    mpi.publish_metrics(&ctx.tracer);
    ex.destroy(ctx)?;
    Ok(result)
}

fn stencil(args: &[String]) {
    let ranks: usize = int_flag(args, "--ranks", 8);
    let n: usize = int_flag(args, "--n", 4);
    let iters: usize = int_flag(args, "--iters", 2);
    let recover = args.iter().any(|a| a == "--recover");
    let checkpoint_every: Option<usize> =
        flag_value(args, "--checkpoint-every").map(|v| match v.parse() {
            Ok(every) if every > 0 => every,
            _ => {
                eprintln!("error: --checkpoint-every takes a positive integer, got `{v}`");
                std::process::exit(2);
            }
        });
    let mut cfg = WorldConfig::summit(ranks);
    if let Some(spec) = flag_value(args, "--faults") {
        match parse_faults(&spec) {
            Ok(plan) => cfg = cfg.with_faults(plan),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }
    if recover && checkpoint_every.is_none() {
        eprintln!("error: --recover needs --checkpoint-every N: restores only rebuild from committed checkpoint generations");
        std::process::exit(2);
    }
    let (tracer, trace_path) = trace_setup(args);
    cfg = cfg.with_tracer(tracer.clone());
    let results = World::run(&cfg, |ctx| {
        let outcome = run_stencil_rank(ctx, n, iters, recover, checkpoint_every);
        Ok((outcome, ctx.clock.now(), ctx.faults.stats.clone()))
    });
    let results = match results {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let d = Decomp::new(ranks);
    println!(
        "world       : {ranks} ranks ({}x{}x{}), {n}^3 interior per rank (radius 2), {iters} iteration(s), {}, recovery {}",
        d.dims[0],
        d.dims[1],
        d.dims[2],
        if cfg.faults.is_some() {
            "fault plan active"
        } else {
            "fault-free"
        },
        if recover { "on" } else { "off" }
    );
    let mut failed = false;
    for (rank, (outcome, clock, stats)) in results.iter().enumerate() {
        match outcome {
            Ok(o) => {
                println!(
                    "rank {rank}      : {} — epoch {}, comm size {}, shrinks {}, excluded {:?}, checkpoints {}, restores {}, clock {clock}",
                    if o.ok { "verified" } else { "MISMATCH vs oracle" },
                    o.epoch,
                    o.size,
                    o.shrinks,
                    o.excluded,
                    o.checkpoints,
                    o.restores
                );
                if !o.ok {
                    failed = true;
                }
            }
            Err(e) => {
                // a killed rank (or an unrecovered survivor) lands here;
                // with --recover only the dead ranks should
                println!("rank {rank}      : failed ({e}), clock {clock}");
                if !matches!(e, MpiError::PeerGone) {
                    failed = true;
                }
            }
        }
        println!(
            "  faults    : send {}, recv {}, retries {}, peer-gone {}, death notices {}, revocations {}, stale dropped {}, corruptions {}, nacks {}, retransmits {}",
            stats.send_faults,
            stats.recv_faults,
            stats.retries,
            stats.peer_gone,
            stats.death_notices,
            stats.revocations,
            stats.stale_dropped,
            stats.corruptions,
            stats.nacks,
            stats.retransmits
        );
        for ev in &stats.events {
            println!("  degrade   : {ev}");
        }
    }
    trace_export(&tracer, trace_path.as_ref());
    if failed {
        std::process::exit(1);
    }
}

/// `tempi-cli chaos`: run a seeded campaign of random fault scenarios (or
/// replay a committed corpus) and judge every run with the invariant
/// oracles. Exit status is the verdict: 0 when every expectation held,
/// 1 otherwise — so CI can run this directly.
fn chaos(args: &[String]) {
    if let Some(dir) = flag_value(args, "--replay") {
        chaos_replay(&dir);
        return;
    }
    let seed: u64 = int_flag(args, "--seed", 0);
    let iters: u64 = int_flag(args, "--iters", 20);
    let do_shrink = args.iter().any(|a| a == "--shrink");
    let out_dir = flag_value(args, "--out").unwrap_or_else(|| "chaos/out".to_string());
    println!(
        "campaign    : seed {seed}, {iters} scenario(s), shrink {}",
        if do_shrink { "on" } else { "off" }
    );
    let mut failures = 0u64;
    for index in 0..iters {
        let sc = tempi_chaos::Scenario::generate(seed, index);
        let outcome = tempi_chaos::run_scenario(&sc);
        let label = format!(
            "scenario {index:>3} (seed {}, {:?}, {} ranks, {} events)",
            sc.seed,
            sc.workload,
            sc.ranks,
            sc.events.len()
        );
        if outcome.ok() {
            println!("{label}: ok");
            continue;
        }
        failures += 1;
        for v in &outcome.violations {
            println!("{label}: VIOLATION {v}");
        }
        if !do_shrink {
            continue;
        }
        let Some(shrunk) = tempi_chaos::shrink(&sc) else {
            println!(
                "{label}: violation did not reproduce under shrink — flaky scenario, please report"
            );
            continue;
        };
        println!(
            "{label}: shrunk {} -> {} event(s) in {} run(s)",
            sc.events.len(),
            shrunk.scenario.events.len(),
            shrunk.runs
        );
        let name = format!("seed{}-idx{index}", seed);
        let re_run = tempi_chaos::run_scenario(&shrunk.scenario);
        match tempi_chaos::dump_failure(
            &shrunk.scenario,
            &re_run,
            std::path::Path::new(&out_dir),
            &name,
        ) {
            Ok((sc_path, trace_path)) => println!(
                "{label}: reproducer -> {} (trace {})",
                sc_path.display(),
                trace_path.display()
            ),
            Err(e) => {
                eprintln!("error: writing reproducer: {e}");
                std::process::exit(1);
            }
        }
    }
    println!(
        "verdict     : {}/{iters} scenario(s) held every invariant",
        iters - failures
    );
    if failures > 0 {
        std::process::exit(1);
    }
}

/// Replay every corpus entry under `dir`, verifying each one's recorded
/// expectation ("fixed" replays green, "open" still reproduces).
fn chaos_replay(dir: &str) {
    let entries = match tempi_chaos::corpus::load_dir(std::path::Path::new(dir)) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("error: loading corpus: {e}");
            std::process::exit(2);
        }
    };
    if entries.is_empty() {
        println!("corpus      : no entries under {dir}");
        return;
    }
    let mut failed = false;
    for (path, entry) in &entries {
        match tempi_chaos::corpus::replay(entry) {
            Ok(()) => println!("{} ({}): ok", entry.name, entry.status),
            Err(e) => {
                println!("{} ({}): FAILED — {e}", entry.name, entry.status);
                let _ = path;
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::parse_faults;

    #[test]
    fn well_formed_fault_plans_parse() {
        let plan = parse_faults("seed=42,send=0.05,corrupt=0.1,exit=1@5ms,retries=4,backoff=10us")
            .unwrap();
        assert_eq!(plan.seed, 42);
        assert!(plan.corrupt.is_active());
        assert_eq!(plan.rank_exits.len(), 1);
    }

    #[test]
    fn malformed_fault_plans_name_the_offending_clause() {
        // every error message must quote the clause the user got wrong
        for (spec, bad_clause) in [
            ("seed=42,warp=0.1", "warp=0.1"),
            ("corrupt=maybe", "corrupt=maybe"),
            ("send=1.5", "send=1.5"),
            ("exit=1", "exit=1"),
            ("exit=one@5ms", "exit=one@5ms"),
            ("delay=0.2", "delay=0.2"),
            ("backoff=10lightyears", "backoff=10lightyears"),
            ("kernel@soon", "kernel@soon"),
            ("justnoise", "justnoise"),
        ] {
            let err = parse_faults(spec).unwrap_err();
            assert!(
                err.contains(&format!("`{bad_clause}`")),
                "spec `{spec}` produced an error that does not quote \
                 `{bad_clause}`: {err}"
            );
        }
    }
}
