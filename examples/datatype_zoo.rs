//! The Fig. 1 / Fig. 2 walkthrough: three different MPI constructions of
//! the same 3-D object, their translated IR trees, and the single
//! canonical form they all collapse to.
//!
//! Run: `cargo run --example datatype_zoo`

use tempi::core::ir::strided_block::strided_block;
use tempi::core::ir::transform::simplify;
use tempi::core::ir::translate::translate_strided;
use tempi::prelude::*;

fn main() -> MpiResult<()> {
    let mut ctx = RankCtx::standalone(&WorldConfig::summit(1));

    // The paper's object: E = (100, 13, 47) bytes inside an allocation of
    // A = (256, 512, 1024) bytes.
    println!("3-D object: 100 x 13 x 47 bytes in a 256 x 512 x 1024 B allocation\n");

    // Construction 1: 2-D subarray plane + vector of planes.
    let plane = ctx.type_create_subarray(&[512, 256], &[13, 100], &[0, 0], Order::C, MPI_BYTE)?;
    let cuboid1 = ctx.type_vector(47, 1, 1, plane)?;

    // Construction 2: nested hvectors over a byte row.
    let row = ctx.type_vector(100, 1, 1, MPI_BYTE)?;
    let plane2 = ctx.type_create_hvector(13, 1, 256, row)?;
    let cuboid2 = ctx.type_create_hvector(47, 1, 256 * 512, plane2)?;

    // Construction 3: one 3-D subarray.
    let cuboid3 = ctx.type_create_subarray(
        &[1024, 512, 256],
        &[47, 13, 100],
        &[0, 0, 0],
        Order::C,
        MPI_BYTE,
    )?;

    let registry = ctx.registry().clone();
    for (name, dt) in [
        ("vector(subarray plane)", cuboid1),
        ("hvector(hvector(vector))", cuboid2),
        ("3-D subarray", cuboid3),
    ] {
        println!("=== {name} ===");
        println!("MPI construction: {}\n", ctx.describe(dt));
        let tree = {
            let mut reg = registry.write();
            translate_strided(&mut *reg, dt)?
        };
        println!("translated IR ({} nodes):\n{tree}", tree.node_count());
        let (canon, passes) = simplify(tree);
        println!(
            "canonical form after {passes} fixed-point pass(es) ({} nodes):\n{canon}",
            canon.node_count()
        );
        let sb = strided_block(&canon).expect("canonical chains convert");
        println!(
            "StridedBlock: start={}, counts={:?}, strides={:?}\n",
            sb.start, sb.counts, sb.strides
        );
    }

    // And the punchline: all three commit to the identical kernel plan.
    let mut mpi = InterposedMpi::new(TempiConfig::default());
    let mut plans = Vec::new();
    for dt in [cuboid1, cuboid2, cuboid3] {
        mpi.type_commit(&mut ctx, dt)?;
        plans.push(mpi.tempi.plan(dt).expect("committed"));
    }
    assert_eq!(plans[0].kind, plans[1].kind);
    assert_eq!(plans[1].kind, plans[2].kind);
    println!("all three constructions selected the identical kernel plan ✓");
    Ok(())
}
