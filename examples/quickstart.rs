//! Quickstart: commit a strided datatype, pack it on the simulated GPU
//! with TEMPI, and compare against the system-MPI baseline.
//!
//! Run: `cargo run --release --example quickstart`

use tempi::prelude::*;

fn main() -> MpiResult<()> {
    // A single simulated Summit rank (Spectrum MPI, V100).
    let cfg = WorldConfig::summit(1);

    // --- with TEMPI interposed -----------------------------------------
    // configured like the real library: TEMPI_* environment variables
    // (TEMPI_METHOD, TEMPI_FORCE_WORD, TEMPI_NO_CANONICALIZE, ...)
    let mut ctx = RankCtx::standalone(&cfg);
    let mut tempi_mpi = InterposedMpi::from_env().unwrap_or_else(|e| {
        eprintln!("bad TEMPI_* configuration: {e}");
        std::process::exit(2);
    });

    // A 1 MiB 2-D object: 16 KiB blocks of 64 B, 128 B apart.
    let dt = ctx.type_vector(16384, 64, 128, MPI_BYTE)?;
    tempi_mpi.type_commit(&mut ctx, dt)?;

    // Inspect the plan TEMPI built at commit.
    let plan = tempi_mpi.tempi.plan(dt).expect("committed");
    println!("committed plan: {:?}", plan.kind_summary());
    println!(
        "  size = {} bytes, block = {} bytes, word W = {}",
        plan.size,
        plan.block_bytes(),
        plan.word()
    );

    // Fill a device buffer and pack.
    let span = 16384 * 128;
    let src = ctx.gpu.malloc(span)?;
    let data: Vec<u8> = (0..span).map(|i| (i % 251) as u8).collect();
    ctx.gpu.memory().poke(src, &data)?;
    let dst = ctx.gpu.malloc(1 << 20)?;

    let t0 = ctx.clock.now();
    let mut pos = 0;
    tempi_mpi.pack(&mut ctx, src, 1, dt, dst, 1 << 20, &mut pos)?;
    let tempi_time = ctx.clock.now() - t0;
    println!("\nTEMPI   MPI_Pack: {tempi_time}");

    // sanity: first block of packed output equals the first strided block
    let packed = ctx.gpu.memory().peek(dst, 64)?;
    assert_eq!(&packed[..], &data[..64]);

    // --- same pack through the plain system MPI -------------------------
    let mut ctx = RankCtx::standalone(&cfg);
    let mut system_mpi = InterposedMpi::system_only();
    let dt = ctx.type_vector(16384, 64, 128, MPI_BYTE)?;
    system_mpi.type_commit(&mut ctx, dt)?;
    let src = ctx.gpu.malloc(span)?;
    ctx.gpu.memory().poke(src, &data)?;
    let dst = ctx.gpu.malloc(1 << 20)?;

    let t0 = ctx.clock.now();
    let mut pos = 0;
    system_mpi.pack(&mut ctx, src, 1, dt, dst, 1 << 20, &mut pos)?;
    let system_time = ctx.clock.now() - t0;
    println!("Spectrum MPI_Pack: {system_time}");
    println!(
        "speedup: {:.0}x",
        system_time.as_ns_f64() / tempi_time.as_ns_f64()
    );
    Ok(())
}

/// Small helper so the example prints something readable for the plan.
trait KindSummary {
    fn kind_summary(&self) -> String;
}

impl KindSummary for tempi::core::TypePlan {
    fn kind_summary(&self) -> String {
        match &self.kind {
            PlanKind::Strided(kp) => format!(
                "{:?} kernel, counts {:?}, strides {:?}",
                kp.kind, kp.sb.counts, kp.sb.strides
            ),
            other => format!("{other:?}"),
        }
    }
}
