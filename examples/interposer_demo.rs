//! The Section-4 architecture in action: the same application code runs
//! against three "link orders" — no TEMPI, full TEMPI, and a partial
//! interposition — and the resolution log shows which library served each
//! MPI call (the moral equivalent of `LD_DEBUG=bindings`).
//!
//! Run: `cargo run --example interposer_demo`

use tempi::prelude::*;

/// The "application": commit a type, pack, send to self, receive, unpack.
fn app(ctx: &mut RankCtx, mpi: &mut InterposedMpi) -> MpiResult<()> {
    let dt = ctx.type_vector(64, 16, 64, MPI_BYTE)?;
    mpi.type_commit(ctx, dt)?;
    let span = 63 * 64 + 16;
    let src = ctx.gpu.malloc(span)?;
    let packed = ctx.gpu.malloc(1024)?;
    let mut pos = 0;
    mpi.pack(ctx, src, 1, dt, packed, 1024, &mut pos)?;
    mpi.send(ctx, src, 1, dt, 0, 7)?;
    mpi.recv(ctx, src, 1, dt, Some(0), Some(7))?;
    let mut pos = 0;
    mpi.unpack(ctx, packed, 1024, &mut pos, src, 1, dt)?;
    Ok(())
}

fn main() -> MpiResult<()> {
    let cfg = WorldConfig::summit(1);
    let scenarios: Vec<(&str, InterposedMpi)> = vec![
        (
            "system only (TEMPI not linked)",
            InterposedMpi::system_only(),
        ),
        (
            "TEMPI via LD_PRELOAD",
            InterposedMpi::new(TempiConfig::default()),
        ),
        (
            "partial interposition (only MPI_Pack/MPI_Unpack exported)",
            InterposedMpi::with_linker(
                TempiConfig::default(),
                Linker::with_overrides([MpiSymbol::Pack, MpiSymbol::Unpack]),
            ),
        ),
    ];

    for (name, mut mpi) in scenarios {
        let mut ctx = RankCtx::standalone(&cfg);
        let t0 = ctx.clock.now();
        app(&mut ctx, &mut mpi)?;
        let elapsed = ctx.clock.now() - t0;
        println!("=== {name} ===");
        println!("symbol resolution:");
        for (sym, provider) in &mpi.log {
            println!("  {sym:?} -> {provider:?}");
        }
        println!("virtual time: {elapsed}\n");
    }
    println!(
        "note how uncovered symbols fall through to the system MPI\n\
         automatically — the property that lets TEMPI deploy on unmodified\n\
         applications (paper Fig. 5)."
    );
    Ok(())
}
