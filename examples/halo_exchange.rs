//! The paper's Section-6.4 application: a 3-D 26-point stencil whose halo
//! exchange runs `MPI_Pack` → `MPI_Alltoallv` → `MPI_Unpack` through the
//! interposed MPI — once against the Spectrum MPI baseline, once with
//! TEMPI — verifying ghost-cell correctness and reporting the speedup.
//!
//! Run: `cargo run --release --example halo_exchange`

use tempi::prelude::*;
use tempi::stencil::{apply_stencil, ExchangeTiming};

fn run(ranks: usize, n: usize, interposed: bool) -> MpiResult<Vec<ExchangeTiming>> {
    let mut cfg = WorldConfig::summit(ranks);
    cfg.net.ranks_per_node = 2;
    World::run(&cfg, |ctx| {
        let mut mpi = if interposed {
            InterposedMpi::new(TempiConfig::default())
        } else {
            InterposedMpi::system_only()
        };
        let mut ex = HaloExchanger::new(ctx, &mut mpi, HaloConfig::small(n))?;
        ex.fill(ctx)?;
        // warm-up, then measure one steady-state exchange
        ex.exchange(ctx, &mut mpi)?;
        let t = ex.exchange(ctx, &mut mpi)?;
        let bad = ex.verify_ghosts(ctx)?;
        assert_eq!(bad, 0, "rank {} has {bad} wrong ghost cells", ctx.rank);
        // run the stencil once so the iteration is end-to-end
        apply_stencil(&ex, ctx)?;
        Ok(t)
    })
}

fn main() -> MpiResult<()> {
    let ranks = 8;
    let n = 24;
    println!("3-D stencil halo exchange: {ranks} ranks, {n}^3 gridpoints per rank, radius 2\n");

    let base = run(ranks, n, false)?;
    let tempi = run(ranks, n, true)?;

    println!(
        "{:>6} {:>28} {:>28}",
        "rank", "Spectrum (pack/comm/unpack)", "TEMPI (pack/comm/unpack)"
    );
    for r in 0..ranks {
        println!(
            "{:>6} {:>8} {:>8} {:>9} {:>8} {:>8} {:>9}",
            r,
            format!("{}", base[r].pack),
            format!("{}", base[r].comm),
            format!("{}", base[r].unpack),
            format!("{}", tempi[r].pack),
            format!("{}", tempi[r].comm),
            format!("{}", tempi[r].unpack),
        );
    }
    let total = |ts: &[ExchangeTiming]| {
        ts.iter()
            .map(|t| t.total())
            .max()
            .expect("at least one rank")
    };
    let b = total(&base);
    let t = total(&tempi);
    println!(
        "\nexchange (slowest rank): baseline {b}, TEMPI {t} → speedup {:.0}x",
        b.as_ns_f64() / t.as_ns_f64()
    );
    println!("all ghost cells verified on every rank ✓");
    Ok(())
}
