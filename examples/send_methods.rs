//! Explore the Section-5 performance model: for a grid of object sizes and
//! contiguous block sizes, print which method (device / one-shot) TEMPI
//! would choose and the modeled times of all three compositions.
//!
//! Run: `cargo run --example send_methods`

use tempi::prelude::*;

fn main() {
    let model = SendModel::summit_internode();
    let blocks = [8usize, 32, 128, 512, 4096, 65536];
    let sizes = [64usize << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20];

    println!("Section-5 method choice (rows: object size, cols: contiguous block)\n");
    print!("{:>10}", "");
    for b in blocks {
        print!("{b:>10}");
    }
    println!();
    for total in sizes {
        print!("{:>10}", format!("{} KiB", total >> 10));
        for block in blocks {
            let m = model.choose(total, block, 4);
            print!(
                "{:>10}",
                match m {
                    Method::Device => "device",
                    Method::OneShot => "one-shot",
                    Method::Staged => "staged",
                    Method::Pipelined => "pipelined",
                }
            );
        }
        println!();
    }

    println!("\nmodeled breakdown for a 4 MiB object with 32 B blocks:");
    let (bytes, block) = (4 << 20, 32);
    for (name, b) in [
        ("device ", model.t_device(bytes, block, 4)),
        ("one-shot", model.t_oneshot(bytes, block, 4)),
        ("staged  ", model.t_staged(bytes, block, 4)),
    ] {
        println!(
            "  {name}: pack {:>10} + transfer {:>10} + unpack {:>10} = {}",
            format!("{}", b.pack),
            format!("{}", b.transfer),
            format!("{}", b.unpack),
            b.total()
        );
    }
    println!(
        "\nthe device method wins for large, finely-strided objects; one-shot\n\
         for smaller or more contiguous ones; staged never wins (paper §5/§6.3)."
    );
}
