//! Distributed matrix transpose — the other classic derived-datatype
//! workload: every rank owns a band of rows of an `N × N` matrix of f32,
//! and the transpose sends each rank a *column band*, which is exactly a
//! strided `MPI_Type_vector` on the sender. TEMPI's packing accelerates
//! precisely those column-band packs.
//!
//! Run: `cargo run --release --example matrix_transpose`

use tempi::prelude::*;

const N: usize = 256; // matrix edge (divisible by the rank count)
const P: usize = 4;

fn value(row: usize, col: usize) -> f32 {
    (row * N + col) as f32
}

fn run(interposed: bool) -> MpiResult<Vec<SimTime>> {
    let mut cfg = WorldConfig::summit(P);
    cfg.net.ranks_per_node = 2;
    World::run(&cfg, |ctx| {
        let mut mpi = if interposed {
            InterposedMpi::new(TempiConfig::default())
        } else {
            InterposedMpi::system_only()
        };
        let rows = N / ctx.size; // my row band height
        let row_bytes = N * 4;

        // my band: rows [rank*rows, (rank+1)*rows)
        let band = ctx.gpu.malloc(rows * row_bytes)?;
        let mut data = Vec::with_capacity(rows * row_bytes);
        for r in 0..rows {
            for c in 0..N {
                data.extend_from_slice(&value(ctx.rank * rows + r, c).to_le_bytes());
            }
        }
        ctx.gpu.memory().poke(band, &data)?;

        // the column band destined for rank j: `rows` columns starting at
        // j*rows — a vector of `rows` rows, each a `rows`-float block,
        // strided by the full row
        let colband =
            ctx.type_vector(rows as i32, (rows * 4) as i32, row_bytes as i32, MPI_BYTE)?;
        mpi.type_commit(ctx, colband)?;

        let chunk = rows * rows * 4;
        let sendbuf = ctx.gpu.malloc(chunk * ctx.size)?;
        let recvbuf = ctx.gpu.malloc(chunk * ctx.size)?;

        ctx.barrier();
        let t0 = ctx.clock.now();
        // pack one column band per destination (TEMPI kernel or baseline)
        let mut pos = 0usize;
        for j in 0..ctx.size {
            let origin = band.add(j * rows * 4);
            mpi.pack(ctx, origin, 1, colband, sendbuf, chunk * ctx.size, &mut pos)?;
        }
        // exchange
        let counts = vec![chunk; ctx.size];
        let displs: Vec<usize> = (0..ctx.size).map(|j| j * chunk).collect();
        mpi.alltoallv_bytes(ctx, sendbuf, &counts, &displs, recvbuf, &counts, &displs)?;
        let elapsed = ctx.clock.now() - t0;

        // verify: chunk j holds the transpose tile T[rank-band rows][j rows]
        // = original rows j*rows.. of columns rank*rows.. — laid out as
        // `rows` runs of `rows` floats (sender's pack order: its rows)
        let got = ctx.gpu.memory().peek(recvbuf, chunk * ctx.size)?;
        for j in 0..ctx.size {
            for sr in 0..rows {
                for sc in 0..rows {
                    let i = j * chunk + (sr * rows + sc) * 4;
                    let v = f32::from_le_bytes(got[i..i + 4].try_into().expect("4 bytes"));
                    let want = value(j * rows + sr, ctx.rank * rows + sc);
                    assert_eq!(v, want, "rank {} tile {j} ({sr},{sc})", ctx.rank);
                }
            }
        }
        Ok(elapsed)
    })
}

fn main() -> MpiResult<()> {
    println!("distributed transpose of a {N} x {N} f32 matrix over {P} ranks\n");
    let base = run(false)?;
    let tempi = run(true)?;
    let worst = |ts: &[SimTime]| ts.iter().copied().max().expect("ranks");
    let (b, t) = (worst(&base), worst(&tempi));
    println!("baseline (Spectrum MPI) transpose: {b}");
    println!("TEMPI transpose:                   {t}");
    println!("speedup: {:.0}x", b.as_ns_f64() / t.as_ns_f64());
    println!("\nall tiles verified on every rank ✓");
    Ok(())
}
